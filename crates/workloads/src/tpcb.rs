//! TPC-B: the classic database stress test.
//!
//! One transaction type — a customer deposit/withdrawal — touching all four
//! tables: update the account balance, the teller balance, and the branch
//! balance, then append a history row. The branch row is the natural
//! contention point; the paper runs 1000 branches ("simulating a balanced
//! workload"). The scale factors here are configurable; defaults are sized
//! for a 24-vCPU container (see DESIGN.md's substitution table).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use sli_engine::{Database, Session, TableHandle};

use crate::encode::*;
use crate::mix::{MixEntry, MixedWorkload, Outcome};

/// Tellers per branch (TPC-B spec).
pub const TELLERS_PER_BRANCH: u64 = 10;

/// Record length for branch/teller/account rows (100-byte rows per spec).
const ROW_LEN: usize = 100;
/// History rows are 50 bytes per spec.
const HISTORY_LEN: usize = 50;

/// Balance field offset (after the id).
const BALANCE_OFF: usize = 8;

/// A loaded TPC-B database.
pub struct TpcB {
    /// Number of branches (scale factor).
    pub branches: u64,
    /// Accounts per branch (spec: 100,000; scaled down by default to fit
    /// containerized runs — the lock footprint per transaction is
    /// unchanged).
    pub accounts_per_branch: u64,
    branch: TableHandle,
    teller: TableHandle,
    account: TableHandle,
    history: TableHandle,
    history_seq: std::sync::atomic::AtomicU64,
}

fn balance_row(id: u64, len: usize) -> Vec<u8> {
    let mut row = vec![0u8; len];
    put_u64(&mut row, 0, id);
    put_i64(&mut row, BALANCE_OFF, 0);
    put_filler(&mut row, 16, len - 16, id);
    row
}

impl TpcB {
    /// Create and load the four tables.
    pub fn load(db: &Arc<Database>, branches: u64, accounts_per_branch: u64) -> Arc<TpcB> {
        let t = TpcB {
            branches,
            accounts_per_branch,
            branch: db.create_table("tpcb_branch").expect("fresh db"),
            teller: db.create_table("tpcb_teller").expect("fresh db"),
            account: db.create_table("tpcb_account").expect("fresh db"),
            history: db.create_table("tpcb_history").expect("fresh db"),
            history_seq: std::sync::atomic::AtomicU64::new(0),
        };
        for b in 1..=branches {
            // Branch and teller rows carry their id as the ordered
            // secondary key so the branchAudit scan can range over them.
            db.bulk_insert(t.branch, b, Some(b), &balance_row(b, ROW_LEN));
            for tl in 0..TELLERS_PER_BRANCH {
                let tid = (b - 1) * TELLERS_PER_BRANCH + tl + 1;
                db.bulk_insert(t.teller, tid, Some(tid), &balance_row(tid, ROW_LEN));
            }
            for a in 0..accounts_per_branch {
                let aid = (b - 1) * accounts_per_branch + a + 1;
                db.bulk_insert(t.account, aid, None, &balance_row(aid, ROW_LEN));
            }
        }
        Arc::new(t)
    }

    /// The account-update transaction: the whole benchmark.
    pub fn account_update(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let branch = rng.gen_range(1..=self.branches);
        let teller = (branch - 1) * TELLERS_PER_BRANCH + rng.gen_range(1..=TELLERS_PER_BRANCH);
        // 85 % of accounts belong to the teller's branch, 15 % are remote
        // (spec behaviour; keeps branch rows hot but not serial).
        let account_branch = if rng.gen_bool(0.85) || self.branches == 1 {
            branch
        } else {
            loop {
                let other = rng.gen_range(1..=self.branches);
                if other != branch {
                    break other;
                }
            }
        };
        let account = (account_branch - 1) * self.accounts_per_branch
            + rng.gen_range(1..=self.accounts_per_branch);
        let delta = rng.gen_range(-99_999i64..=99_999);
        // ordering: relaxed — a pure id allocator; uniqueness comes from
        // the atomic RMW.
        let hid = self
            .history_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        Outcome::from_result(s.run(|txn| {
            let mut new_balance = 0i64;
            txn.update_by_key(self.account, account, |old| {
                let mut row = old.to_vec();
                new_balance = get_i64(&row, BALANCE_OFF) + delta;
                put_i64(&mut row, BALANCE_OFF, new_balance);
                row
            })?;
            txn.update_by_key(self.teller, teller, |old| {
                let mut row = old.to_vec();
                let v = get_i64(&row, BALANCE_OFF) + delta;
                put_i64(&mut row, BALANCE_OFF, v);
                row
            })?;
            txn.update_by_key(self.branch, branch, |old| {
                let mut row = old.to_vec();
                let v = get_i64(&row, BALANCE_OFF) + delta;
                put_i64(&mut row, BALANCE_OFF, v);
                row
            })?;
            let mut h = vec![0u8; HISTORY_LEN];
            put_u64(&mut h, 0, account);
            put_u64(&mut h, 8, teller);
            put_u64(&mut h, 16, branch);
            put_i64(&mut h, 24, delta);
            put_i64(&mut h, 32, new_balance);
            put_filler(&mut h, 40, HISTORY_LEN - 40, hid);
            txn.insert(self.history, hid, &h)?;
            Ok(())
        }))
    }

    /// TPC-B as a drivable workload.
    pub fn workload(self: &Arc<Self>) -> MixedWorkload {
        let me = Arc::clone(self);
        MixedWorkload::new(
            "TPC-B",
            vec![MixEntry {
                name: "accountUpdate",
                weight: 1.0,
                run: Box::new(move |s, rng| me.account_update(s, rng)),
            }],
        )
    }

    /// The branch-audit transaction: a long read-only analytic scan over
    /// every branch and teller balance that asserts the conservation
    /// invariant *within one transaction* — sum(branch balances) ==
    /// sum(teller balances). Any concurrency control that gives the
    /// reader a consistent view (2PL via blocking/deadlock-retry, MVCC
    /// via snapshots) commits it; an inconsistent cut rolls back as
    /// `UserAbort("snapshot-inconsistent")`, which the harness counts as
    /// a failure — making this transaction an online isolation check.
    pub fn branch_audit(&self, s: &Session) -> Outcome {
        let branches = self.branches;
        let tellers = branches * TELLERS_PER_BRANCH;
        Outcome::from_result(s.run(|txn| {
            let mut bb = 0i64;
            txn.scan_ordered(self.branch, 1, branches, branches as usize, |_, row| {
                bb += get_i64(row, BALANCE_OFF);
            })?;
            let mut tb = 0i64;
            txn.scan_ordered(self.teller, 1, tellers, tellers as usize, |_, row| {
                tb += get_i64(row, BALANCE_OFF);
            })?;
            if bb != tb {
                return Err(txn.user_abort("snapshot-inconsistent"));
            }
            Ok(())
        }))
    }

    /// Reader-heavy analytic mix: mostly account updates with a steady
    /// stream of long branch-audit scans riding along. On the locked
    /// backend every audit S-locks the entire branch and teller tables
    /// record by record (colliding with every writer); on the MVCC
    /// backend it reads a snapshot and acquires no locks at all —
    /// exactly the contrast the `backend-matrix` experiment measures.
    pub fn analytic_workload(self: &Arc<Self>) -> MixedWorkload {
        let upd = Arc::clone(self);
        let aud = Arc::clone(self);
        MixedWorkload::new(
            "TPC-B analytic",
            vec![
                MixEntry {
                    name: "accountUpdate",
                    weight: 0.85,
                    run: Box::new(move |s, rng| upd.account_update(s, rng)),
                },
                MixEntry {
                    name: "branchAudit",
                    weight: 0.15,
                    run: Box::new(move |s, _| aud.branch_audit(s)),
                },
            ],
        )
    }

    /// Verify the TPC-B conservation invariant on a database that may not
    /// be the one this instance was loaded into — tables are resolved by
    /// name, so a *recovered* database checks too. Returns the history
    /// row count (each committed transaction appended exactly one) for
    /// the caller to compare against its durable-winner count. An `Err`
    /// describes the violated invariant.
    pub fn check_recovered(
        db: &Arc<Database>,
        branches: u64,
        accounts_per_branch: u64,
    ) -> Result<u64, String> {
        let resolve = |name: &str| {
            db.table_handle(name)
                .ok_or_else(|| format!("table {name} missing after recovery"))
        };
        let branch = resolve("tpcb_branch")?;
        let teller = resolve("tpcb_teller")?;
        let account = resolve("tpcb_account")?;
        let history = resolve("tpcb_history")?;
        let sum = |table: TableHandle, count: u64, what: &str| -> Result<i64, String> {
            let mut acc = 0i64;
            for id in 1..=count {
                let row = db
                    .peek(table, id)
                    .ok_or_else(|| format!("{what} row {id} missing after recovery"))?;
                acc += get_i64(&row, BALANCE_OFF);
            }
            Ok(acc)
        };
        let bb = sum(branch, branches, "branch")?;
        let tb = sum(teller, branches * TELLERS_PER_BRANCH, "teller")?;
        let ab = sum(account, branches * accounts_per_branch, "account")?;
        if bb != tb {
            return Err(format!(
                "balance sums diverge: branches {bb} vs tellers {tb}"
            ));
        }
        if bb != ab {
            return Err(format!(
                "balance sums diverge: branches {bb} vs accounts {ab}"
            ));
        }
        Ok(db.record_count(history))
    }

    /// Sum of all branch balances (invariant: equals sum of teller
    /// balances and sum of account balances).
    pub fn balance_sums(&self, db: &Arc<Database>) -> (i64, i64, i64) {
        let sum = |table: TableHandle, count: u64| -> i64 {
            (1..=count)
                .map(|id| get_i64(&db.peek(table, id).expect("row exists"), BALANCE_OFF))
                .sum()
        };
        (
            sum(self.branch, self.branches),
            sum(self.teller, self.branches * TELLERS_PER_BRANCH),
            sum(self.account, self.branches * self.accounts_per_branch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sli_engine::DatabaseConfig;

    #[test]
    fn load_counts() {
        let db = Database::open(
            DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory(),
        );
        let b = TpcB::load(&db, 4, 100);
        assert_eq!(db.record_count(db.table_handle("tpcb_branch").unwrap()), 4);
        assert_eq!(db.record_count(db.table_handle("tpcb_teller").unwrap()), 40);
        assert_eq!(
            db.record_count(db.table_handle("tpcb_account").unwrap()),
            400
        );
        let (bb, tb, ab) = b.balance_sums(&db);
        assert_eq!((bb, tb, ab), (0, 0, 0));
    }

    #[test]
    fn single_threaded_transactions_preserve_the_invariant() {
        let db = Database::open(
            DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory(),
        );
        let b = TpcB::load(&db, 2, 50);
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..300 {
            assert_eq!(b.account_update(&s, &mut rng), Outcome::Commit);
        }
        let (bb, tb, ab) = b.balance_sums(&db);
        assert_eq!(bb, tb, "branch vs teller sums");
        assert_eq!(bb, ab, "branch vs account sums");
        assert_eq!(
            db.record_count(db.table_handle("tpcb_history").unwrap()),
            300
        );
    }

    #[test]
    fn concurrent_transactions_preserve_the_invariant() {
        let db = Database::open(
            DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory(),
        );
        let b = TpcB::load(&db, 2, 50);
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let db = Arc::clone(&db);
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let s = db.session();
                let mut rng = SmallRng::seed_from_u64(t);
                let mut commits = 0;
                for _ in 0..150 {
                    match b.account_update(&s, &mut rng) {
                        Outcome::Commit => commits += 1,
                        Outcome::SysAbort => {} // deadlock victim: fine
                        Outcome::UserFail => panic!("TPC-B never user-fails"),
                    }
                }
                commits
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let (bb, tb, ab) = b.balance_sums(&db);
        assert_eq!(bb, tb);
        assert_eq!(bb, ab);
        assert_eq!(
            db.record_count(db.table_handle("tpcb_history").unwrap()),
            total
        );
    }

    #[test]
    fn branch_audit_sees_consistent_snapshots_under_concurrent_updates() {
        use sli_engine::BackendKind;
        for backend in [BackendKind::Locked2pl, BackendKind::Mvcc] {
            let db = Database::open(DatabaseConfig::default().backend(backend).in_memory());
            let b = TpcB::load(&db, 2, 50);
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let mut writers = Vec::new();
            for t in 0..4u64 {
                let db = Arc::clone(&db);
                let b = Arc::clone(&b);
                let stop = Arc::clone(&stop);
                writers.push(std::thread::spawn(move || {
                    let s = db.session();
                    let mut rng = SmallRng::seed_from_u64(t);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        b.account_update(&s, &mut rng);
                    }
                }));
            }
            let s = db.session();
            let mut audits = 0;
            let mut retries = 0;
            while audits < 30 {
                match b.branch_audit(&s) {
                    Outcome::Commit => audits += 1,
                    Outcome::SysAbort => retries += 1, // victim/validation loser
                    Outcome::UserFail => {
                        panic!("audit observed an inconsistent cut on {backend:?}")
                    }
                }
                assert!(retries < 100_000, "audit never commits on {backend:?}");
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for w in writers {
                w.join().unwrap();
            }
            let (bb, tb, _) = b.balance_sums(&db);
            assert_eq!(bb, tb);
        }
    }
}
