//! TPC-C: order-entry OLTP.
//!
//! All nine tables and the five transactions, with the spec's row-access
//! patterns preserved (New Order touches 5-15 items; Stock Level examines
//! ~200 order lines; Delivery drains one order per district across all ten
//! districts). Simplifications versus the full spec are documented in
//! DESIGN.md §5: sizes are scaled by configuration, all items are local to
//! the home warehouse, and customer lookup is by id (no last-name index) —
//! none of which changes the per-transaction *lock footprint*, which is
//! what the paper's experiments measure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sli_engine::{Database, Session, TableHandle, TxnError};

use crate::encode::*;
use crate::mix::{MixEntry, MixedWorkload, Outcome};

/// Districts per warehouse (spec).
pub const DISTRICTS: u64 = 10;

/// Scale configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpcCScale {
    /// Number of warehouses (the paper loads 300).
    pub warehouses: u64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u64,
    /// Item catalog size (spec: 100,000).
    pub items: u64,
    /// Initially loaded orders per district (spec: 3000, newest 900
    /// undelivered).
    pub initial_orders_per_district: u64,
}

impl Default for TpcCScale {
    fn default() -> Self {
        TpcCScale {
            warehouses: 24,
            customers_per_district: 300,
            items: 5_000,
            initial_orders_per_district: 150,
        }
    }
}

impl TpcCScale {
    /// A tiny scale for unit tests.
    pub fn tiny() -> Self {
        TpcCScale {
            warehouses: 2,
            customers_per_district: 30,
            items: 200,
            initial_orders_per_district: 20,
        }
    }
}

// ---- key packing ---------------------------------------------------------

fn dist_key(w: u64, d: u64) -> u64 {
    w * 16 + d
}

fn cust_key(w: u64, d: u64, c: u64) -> u64 {
    dist_key(w, d) * 4096 + c
}

fn stock_key(w: u64, i: u64) -> u64 {
    w * 0x0002_0000 + i
}

fn order_key(w: u64, d: u64, o: u64) -> u64 {
    (dist_key(w, d) << 32) | o
}

/// Ordered-index key for orders: sorts by customer, then order number, so
/// "newest order of customer c" is a reverse range probe.
fn order_okey(w: u64, d: u64, c: u64, o: u64) -> u64 {
    (cust_key(w, d, c) << 24) | o
}

/// Ordered-index key for new_order rows: sorts by district then order
/// number, so "oldest undelivered order in district" is a forward probe.
fn new_order_okey(w: u64, d: u64, o: u64) -> u64 {
    (dist_key(w, d) << 32) | o
}

fn order_line_key(w: u64, d: u64, o: u64, line: u64) -> u64 {
    (dist_key(w, d) << 36) | (o << 4) | line
}

// ---- record layouts -------------------------------------------------------

const WAREHOUSE_LEN: usize = 96;
const DISTRICT_LEN: usize = 96;
const CUSTOMER_LEN: usize = 200;
const ITEM_LEN: usize = 80;
const STOCK_LEN: usize = 120;
const ORDER_LEN: usize = 64;
const NEW_ORDER_LEN: usize = 16;
const ORDER_LINE_LEN: usize = 48;
const HISTORY_LEN: usize = 46;

mod district_field {
    pub const YTD: usize = 8;
    pub const NEXT_O_ID: usize = 16;
}

mod customer_field {
    pub const BALANCE: usize = 8;
    pub const YTD_PAYMENT: usize = 16;
    pub const PAYMENT_CNT: usize = 24;
    pub const DELIVERY_CNT: usize = 32;
}

mod stock_field {
    pub const QUANTITY: usize = 8;
    pub const YTD: usize = 16;
    pub const ORDER_CNT: usize = 24;
}

mod order_field {
    pub const C_ID: usize = 8;
    pub const CARRIER: usize = 16;
    pub const OL_CNT: usize = 24;
}

mod order_line_field {
    pub const I_ID: usize = 8;
    pub const QTY: usize = 16;
    pub const AMOUNT: usize = 24;
    pub const DELIVERY_D: usize = 32;
}

struct Tables {
    warehouse: TableHandle,
    district: TableHandle,
    customer: TableHandle,
    item: TableHandle,
    stock: TableHandle,
    order: TableHandle,
    new_order: TableHandle,
    order_line: TableHandle,
    history: TableHandle,
}

/// A loaded TPC-C database.
pub struct TpcC {
    /// The scale it was loaded at.
    pub scale: TpcCScale,
    t: Tables,
    history_seq: AtomicU64,
}

/// The five TPC-C transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpcCTxn {
    /// New Order (update, medium weight, 1 % user failures).
    NewOrder,
    /// Payment (update, short).
    Payment,
    /// Order Status (read-only).
    OrderStatus,
    /// Delivery (update, largest, most contentious).
    Delivery,
    /// Stock Level (read-only, ~200 order lines).
    StockLevel,
}

impl TpcC {
    /// Create all nine tables and load them at `scale`.
    pub fn load(db: &Arc<Database>, scale: TpcCScale, seed: u64) -> Arc<TpcC> {
        let t = Tables {
            warehouse: db.create_table("tpcc_warehouse").expect("fresh db"),
            district: db.create_table("tpcc_district").expect("fresh db"),
            customer: db.create_table("tpcc_customer").expect("fresh db"),
            item: db.create_table("tpcc_item").expect("fresh db"),
            stock: db.create_table("tpcc_stock").expect("fresh db"),
            order: db.create_table("tpcc_order").expect("fresh db"),
            new_order: db.create_table("tpcc_new_order").expect("fresh db"),
            order_line: db.create_table("tpcc_order_line").expect("fresh db"),
            history: db.create_table("tpcc_history").expect("fresh db"),
        };
        let mut rng = SmallRng::seed_from_u64(seed);

        for i in 1..=scale.items {
            let mut row = vec![0u8; ITEM_LEN];
            put_u64(&mut row, 0, i);
            put_i64(&mut row, 8, rng.gen_range(100..10_000)); // price cents
            put_filler(&mut row, 16, ITEM_LEN - 16, i);
            db.bulk_insert(t.item, i, None, &row);
        }

        for w in 1..=scale.warehouses {
            let mut row = vec![0u8; WAREHOUSE_LEN];
            put_u64(&mut row, 0, w);
            put_i64(&mut row, 8, 0); // ytd
            put_filler(&mut row, 16, WAREHOUSE_LEN - 16, w);
            db.bulk_insert(t.warehouse, w, None, &row);

            for i in 1..=scale.items {
                let mut s = vec![0u8; STOCK_LEN];
                put_u64(&mut s, 0, i);
                put_i64(&mut s, stock_field::QUANTITY, rng.gen_range(10..100));
                put_filler(&mut s, 32, STOCK_LEN - 32, w ^ i);
                db.bulk_insert(t.stock, stock_key(w, i), None, &s);
            }

            for d in 1..=DISTRICTS {
                let next_o = scale.initial_orders_per_district + 1;
                let mut row = vec![0u8; DISTRICT_LEN];
                put_u64(&mut row, 0, dist_key(w, d));
                put_i64(&mut row, district_field::YTD, 0);
                put_u64(&mut row, district_field::NEXT_O_ID, next_o);
                put_filler(&mut row, 24, DISTRICT_LEN - 24, w * 16 + d);
                db.bulk_insert(t.district, dist_key(w, d), None, &row);

                for c in 1..=scale.customers_per_district {
                    let mut row = vec![0u8; CUSTOMER_LEN];
                    put_u64(&mut row, 0, cust_key(w, d, c));
                    put_i64(&mut row, customer_field::BALANCE, -1000);
                    put_filler(&mut row, 40, CUSTOMER_LEN - 40, cust_key(w, d, c));
                    db.bulk_insert(t.customer, cust_key(w, d, c), None, &row);
                }

                // Initial orders: the newest 30 % are undelivered.
                let delivered_upto = (scale.initial_orders_per_district as f64 * 0.7) as u64;
                for o in 1..=scale.initial_orders_per_district {
                    let c = rng.gen_range(1..=scale.customers_per_district);
                    let ol_cnt = rng.gen_range(5..=15u64);
                    let mut row = vec![0u8; ORDER_LEN];
                    put_u64(&mut row, 0, order_key(w, d, o));
                    put_u64(&mut row, order_field::C_ID, c);
                    put_u64(
                        &mut row,
                        order_field::CARRIER,
                        if o <= delivered_upto {
                            rng.gen_range(1..=10)
                        } else {
                            0
                        },
                    );
                    put_u64(&mut row, order_field::OL_CNT, ol_cnt);
                    db.bulk_insert(
                        t.order,
                        order_key(w, d, o),
                        Some(order_okey(w, d, c, o)),
                        &row,
                    );
                    if o > delivered_upto {
                        let mut no = vec![0u8; NEW_ORDER_LEN];
                        put_u64(&mut no, 0, order_key(w, d, o));
                        db.bulk_insert(
                            t.new_order,
                            order_key(w, d, o),
                            Some(new_order_okey(w, d, o)),
                            &no,
                        );
                    }
                    for line in 0..ol_cnt {
                        let i = rng.gen_range(1..=scale.items);
                        let mut ol = vec![0u8; ORDER_LINE_LEN];
                        put_u64(&mut ol, 0, order_key(w, d, o));
                        put_u64(&mut ol, order_line_field::I_ID, i);
                        put_i64(&mut ol, order_line_field::QTY, 5);
                        put_i64(&mut ol, order_line_field::AMOUNT, rng.gen_range(1..10_000));
                        put_u64(
                            &mut ol,
                            order_line_field::DELIVERY_D,
                            (o <= delivered_upto) as u64,
                        );
                        let k = order_line_key(w, d, o, line);
                        db.bulk_insert(t.order_line, k, Some(k), &ol);
                    }
                }
            }
        }
        Arc::new(TpcC {
            scale,
            t,
            history_seq: AtomicU64::new(0),
        })
    }

    fn rand_wd(&self, rng: &mut SmallRng) -> (u64, u64) {
        (
            rng.gen_range(1..=self.scale.warehouses),
            rng.gen_range(1..=DISTRICTS),
        )
    }

    /// New Order: insert a 5-15 line sales order. 1 % of runs reference an
    /// invalid item and roll back (the spec's mandated failure).
    pub fn new_order(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let (w, d) = self.rand_wd(rng);
        let c = rng.gen_range(1..=self.scale.customers_per_district);
        let ol_cnt = rng.gen_range(5..=15u64);
        // Pre-generate the item list; with 1 % probability the last item id
        // is invalid, which the transaction only discovers after having
        // done most of its work (per spec).
        let mut items: Vec<u64> = (0..ol_cnt)
            .map(|_| rng.gen_range(1..=self.scale.items))
            .collect();
        let poisoned = rng.gen_bool(0.01);
        if poisoned {
            *items.last_mut().expect("ol_cnt >= 5") = u64::MAX;
        }
        let qtys: Vec<i64> = (0..ol_cnt).map(|_| rng.gen_range(1..=10i64)).collect();
        Outcome::from_result(s.run(|txn| {
            let _wrow = txn.read_by_key(self.t.warehouse, w)?;
            let _crow = txn.read_by_key(self.t.customer, cust_key(w, d, c))?;
            // Allocate the order number from the district row.
            let mut o_id = 0;
            txn.update_by_key(self.t.district, dist_key(w, d), |old| {
                let mut row = old.to_vec();
                o_id = get_u64(&row, district_field::NEXT_O_ID);
                put_u64(&mut row, district_field::NEXT_O_ID, o_id + 1);
                row
            })?;
            let mut total = 0i64;
            for (line, (&i_id, &qty)) in items.iter().zip(qtys.iter()).enumerate() {
                let item = match txn.read_by_key(self.t.item, i_id) {
                    Ok(row) => row,
                    Err(TxnError::NotFound) => {
                        return Err(txn.user_abort("invalid item id"));
                    }
                    Err(e) => return Err(e),
                };
                let price = get_i64(&item, 8);
                txn.update_by_key(self.t.stock, stock_key(w, i_id), |old| {
                    let mut row = old.to_vec();
                    let q = get_i64(&row, stock_field::QUANTITY);
                    let newq = if q - qty >= 10 { q - qty } else { q - qty + 91 };
                    put_i64(&mut row, stock_field::QUANTITY, newq);
                    let v = get_i64(&row, stock_field::YTD) + qty;
                    put_i64(&mut row, stock_field::YTD, v);
                    let v = get_i64(&row, stock_field::ORDER_CNT) + 1;
                    put_i64(&mut row, stock_field::ORDER_CNT, v);
                    row
                })?;
                let amount = price * qty;
                total += amount;
                let mut ol = vec![0u8; ORDER_LINE_LEN];
                put_u64(&mut ol, 0, order_key(w, d, o_id));
                put_u64(&mut ol, order_line_field::I_ID, i_id);
                put_i64(&mut ol, order_line_field::QTY, qty);
                put_i64(&mut ol, order_line_field::AMOUNT, amount);
                let k = order_line_key(w, d, o_id, line as u64);
                txn.insert_with_okey(self.t.order_line, k, Some(k), &ol)?;
            }
            let _ = total;
            let mut row = vec![0u8; ORDER_LEN];
            put_u64(&mut row, 0, order_key(w, d, o_id));
            put_u64(&mut row, order_field::C_ID, c);
            put_u64(&mut row, order_field::OL_CNT, ol_cnt);
            txn.insert_with_okey(
                self.t.order,
                order_key(w, d, o_id),
                Some(order_okey(w, d, c, o_id)),
                &row,
            )?;
            let mut no = vec![0u8; NEW_ORDER_LEN];
            put_u64(&mut no, 0, order_key(w, d, o_id));
            txn.insert_with_okey(
                self.t.new_order,
                order_key(w, d, o_id),
                Some(new_order_okey(w, d, o_id)),
                &no,
            )?;
            Ok(())
        }))
    }

    /// Payment: apply a payment to warehouse, district, and customer, and
    /// append a history row.
    pub fn payment(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let (w, d) = self.rand_wd(rng);
        let c = rng.gen_range(1..=self.scale.customers_per_district);
        let amount = rng.gen_range(100..500_000i64);
        // ordering: relaxed — a pure id allocator; uniqueness comes from
        // the atomic RMW.
        let hid = self.history_seq.fetch_add(1, Ordering::Relaxed) + 1;
        Outcome::from_result(s.run(|txn| {
            txn.update_by_key(self.t.warehouse, w, |old| {
                let mut row = old.to_vec();
                let v = get_i64(&row, 8) + amount;
                put_i64(&mut row, 8, v);
                row
            })?;
            txn.update_by_key(self.t.district, dist_key(w, d), |old| {
                let mut row = old.to_vec();
                let v = get_i64(&row, district_field::YTD) + amount;
                put_i64(&mut row, district_field::YTD, v);
                row
            })?;
            txn.update_by_key(self.t.customer, cust_key(w, d, c), |old| {
                let mut row = old.to_vec();
                let v = get_i64(&row, customer_field::BALANCE) - amount;
                put_i64(&mut row, customer_field::BALANCE, v);
                let v = get_i64(&row, customer_field::YTD_PAYMENT) + amount;
                put_i64(&mut row, customer_field::YTD_PAYMENT, v);
                let v = get_i64(&row, customer_field::PAYMENT_CNT) + 1;
                put_i64(&mut row, customer_field::PAYMENT_CNT, v);
                row
            })?;
            let mut h = vec![0u8; HISTORY_LEN];
            put_u64(&mut h, 0, cust_key(w, d, c));
            put_i64(&mut h, 8, amount);
            put_filler(&mut h, 16, HISTORY_LEN - 16, hid);
            txn.insert(self.t.history, hid, &h)?;
            Ok(())
        }))
    }

    /// Order Status: the customer's most recent order and its lines.
    pub fn order_status(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let (w, d) = self.rand_wd(rng);
        let c = rng.gen_range(1..=self.scale.customers_per_district);
        Outcome::from_result(s.run(|txn| {
            let _crow = txn.read_by_key(self.t.customer, cust_key(w, d, c))?;
            let lo = order_okey(w, d, c, 0);
            let hi = order_okey(w, d, c, (1 << 24) - 1);
            let Some((okey, rid)) = txn.ordered_last(self.t.order, lo, hi) else {
                return Err(txn.user_abort("customer has no orders"));
            };
            let order = txn.read(self.t.order, rid)?;
            let o_id = okey & ((1 << 24) - 1);
            let ol_cnt = get_u64(&order, order_field::OL_CNT);
            let line_lo = order_line_key(w, d, o_id, 0);
            let line_hi = order_line_key(w, d, o_id, 15);
            let mut sum = 0i64;
            txn.scan_ordered(self.t.order_line, line_lo, line_hi, 16, |_, row| {
                sum += get_i64(row, order_line_field::AMOUNT);
            })?;
            let _ = (ol_cnt, sum);
            Ok(())
        }))
    }

    /// Delivery: deliver the oldest undelivered order in every district of
    /// one warehouse.
    pub fn delivery(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let w = rng.gen_range(1..=self.scale.warehouses);
        let carrier = rng.gen_range(1..=10u64);
        Outcome::from_result(s.run(|txn| {
            for d in 1..=DISTRICTS {
                let lo = new_order_okey(w, d, 0);
                let hi = new_order_okey(w, d, u32::MAX as u64);
                let Some((okey, _rid)) = txn.ordered_first(self.t.new_order, lo, hi) else {
                    continue; // district fully delivered: spec says skip
                };
                let o_id = okey & (u32::MAX as u64);
                txn.delete_by_key(
                    self.t.new_order,
                    order_key(w, d, o_id),
                    Some(new_order_okey(w, d, o_id)),
                )?;
                let mut c_id = 0;
                let mut ol_cnt = 0;
                txn.update_by_key(self.t.order, order_key(w, d, o_id), |old| {
                    let mut row = old.to_vec();
                    c_id = get_u64(&row, order_field::C_ID);
                    ol_cnt = get_u64(&row, order_field::OL_CNT);
                    put_u64(&mut row, order_field::CARRIER, carrier);
                    row
                })?;
                let mut amount_sum = 0i64;
                for line in 0..ol_cnt {
                    let k = order_line_key(w, d, o_id, line);
                    txn.update_by_key(self.t.order_line, k, |old| {
                        let mut row = old.to_vec();
                        amount_sum += get_i64(&row, order_line_field::AMOUNT);
                        put_u64(&mut row, order_line_field::DELIVERY_D, 1);
                        row
                    })?;
                }
                txn.update_by_key(self.t.customer, cust_key(w, d, c_id), |old| {
                    let mut row = old.to_vec();
                    let v = get_i64(&row, customer_field::BALANCE) + amount_sum;
                    put_i64(&mut row, customer_field::BALANCE, v);
                    let v = get_i64(&row, customer_field::DELIVERY_CNT) + 1;
                    put_i64(&mut row, customer_field::DELIVERY_CNT, v);
                    row
                })?;
            }
            Ok(())
        }))
    }

    /// Stock Level: count recently sold items whose stock is below a
    /// threshold (examines the order lines of the district's last 20
    /// orders — roughly 200 rows).
    pub fn stock_level(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let (w, d) = self.rand_wd(rng);
        let threshold = rng.gen_range(10..=20i64);
        Outcome::from_result(s.run(|txn| {
            let drow = txn.read_by_key(self.t.district, dist_key(w, d))?;
            let next_o = get_u64(&drow, district_field::NEXT_O_ID);
            let o_lo = next_o.saturating_sub(20);
            let line_lo = order_line_key(w, d, o_lo, 0);
            let line_hi = order_line_key(w, d, next_o, 0).saturating_sub(1);
            let mut item_ids = Vec::with_capacity(256);
            txn.scan_ordered(self.t.order_line, line_lo, line_hi, 400, |_, row| {
                item_ids.push(get_u64(row, order_line_field::I_ID));
            })?;
            item_ids.sort_unstable();
            item_ids.dedup();
            let mut low = 0;
            for i_id in item_ids {
                let stock = txn.read_by_key(self.t.stock, stock_key(w, i_id))?;
                if get_i64(&stock, stock_field::QUANTITY) < threshold {
                    low += 1;
                }
            }
            let _ = low;
            Ok(())
        }))
    }

    /// Run one named transaction.
    pub fn run(&self, kind: TpcCTxn, s: &Session, rng: &mut SmallRng) -> Outcome {
        match kind {
            TpcCTxn::NewOrder => self.new_order(s, rng),
            TpcCTxn::Payment => self.payment(s, rng),
            TpcCTxn::OrderStatus => self.order_status(s, rng),
            TpcCTxn::Delivery => self.delivery(s, rng),
            TpcCTxn::StockLevel => self.stock_level(s, rng),
        }
    }

    fn entry(self: &Arc<Self>, kind: TpcCTxn, name: &'static str, weight: f64) -> MixEntry {
        let me = Arc::clone(self);
        MixEntry {
            name,
            weight,
            run: Box::new(move |s, rng| me.run(kind, s, rng)),
        }
    }

    /// The paper's "small mix": Payment / New Order / Order Status at
    /// 46.7 / 48.9 / 4.3 %.
    pub fn small_mix(self: &Arc<Self>) -> MixedWorkload {
        MixedWorkload::new(
            "TPC-C Small Mix",
            vec![
                self.entry(TpcCTxn::Payment, "Payment", 46.7),
                self.entry(TpcCTxn::NewOrder, "NewOrder", 48.9),
                self.entry(TpcCTxn::OrderStatus, "OrderStatus", 4.3),
            ],
        )
    }

    /// The full five-transaction mix at spec frequencies.
    pub fn full_mix(self: &Arc<Self>) -> MixedWorkload {
        MixedWorkload::new(
            "TPC-C Mix",
            vec![
                self.entry(TpcCTxn::NewOrder, "NewOrder", 45.0),
                self.entry(TpcCTxn::Payment, "Payment", 43.0),
                self.entry(TpcCTxn::OrderStatus, "OrderStatus", 4.0),
                self.entry(TpcCTxn::Delivery, "Delivery", 4.0),
                self.entry(TpcCTxn::StockLevel, "StockLevel", 4.0),
            ],
        )
    }

    /// Verify TPC-C structural invariants on a database resolved by table
    /// *name*, so a recovered database checks too:
    ///
    /// 1. money conservation: every warehouse's YTD equals the sum of its
    ///    districts' YTDs (Payment updates both or neither);
    /// 2. order density: each district's `NEXT_O_ID` agrees with the
    ///    orders actually present — ids `1..NEXT_O_ID` exist, `NEXT_O_ID`
    ///    does not (New Order allocates the id and inserts the order in
    ///    one transaction);
    /// 3. completeness: every order's `OL_CNT` order lines exist, and
    ///    every new-order row points at an existing order.
    ///
    /// An `Err` describes the first violated invariant.
    pub fn check_recovered(db: &Arc<Database>, scale: TpcCScale) -> Result<(), String> {
        let resolve = |name: &str| {
            db.table_handle(name)
                .ok_or_else(|| format!("table {name} missing after recovery"))
        };
        let warehouse = resolve("tpcc_warehouse")?;
        let district = resolve("tpcc_district")?;
        let order = resolve("tpcc_order")?;
        let new_order = resolve("tpcc_new_order")?;
        let order_line = resolve("tpcc_order_line")?;

        let mut new_order_rows = 0u64;
        for w in 1..=scale.warehouses {
            let wrow = db
                .peek(warehouse, w)
                .ok_or_else(|| format!("warehouse {w} missing"))?;
            let w_ytd = get_i64(&wrow, 8);
            let mut d_ytd_sum = 0i64;
            for d in 1..=DISTRICTS {
                let drow = db
                    .peek(district, dist_key(w, d))
                    .ok_or_else(|| format!("district {w}/{d} missing"))?;
                d_ytd_sum += get_i64(&drow, district_field::YTD);
                let next_o = get_u64(&drow, district_field::NEXT_O_ID);
                if db.peek(order, order_key(w, d, next_o)).is_some() {
                    return Err(format!(
                        "district {w}/{d}: order {next_o} exists past NEXT_O_ID"
                    ));
                }
                for o in 1..next_o {
                    let orow = db.peek(order, order_key(w, d, o)).ok_or_else(|| {
                        format!("district {w}/{d}: order {o} < NEXT_O_ID {next_o} missing")
                    })?;
                    let ol_cnt = get_u64(&orow, order_field::OL_CNT);
                    for line in 0..ol_cnt {
                        if db.peek(order_line, order_line_key(w, d, o, line)).is_none() {
                            return Err(format!("order {w}/{d}/{o}: line {line}/{ol_cnt} missing"));
                        }
                    }
                    if db.peek(new_order, order_key(w, d, o)).is_some() {
                        new_order_rows += 1;
                    }
                }
            }
            if w_ytd != d_ytd_sum {
                return Err(format!(
                    "warehouse {w}: YTD {w_ytd} != district YTD sum {d_ytd_sum}"
                ));
            }
        }
        // Every new-order row was seen attached to an existing order.
        let total = db.record_count(new_order);
        if total != new_order_rows {
            return Err(format!(
                "{} new-order rows but only {new_order_rows} point at existing orders",
                total
            ));
        }
        Ok(())
    }

    /// A single-transaction workload.
    pub fn single(self: &Arc<Self>, kind: TpcCTxn) -> MixedWorkload {
        let name = match kind {
            TpcCTxn::NewOrder => "NewOrder",
            TpcCTxn::Payment => "Payment",
            TpcCTxn::OrderStatus => "OrderStatus",
            TpcCTxn::Delivery => "Delivery",
            TpcCTxn::StockLevel => "StockLevel",
        };
        MixedWorkload::new(name, vec![self.entry(kind, name, 1.0)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sli_engine::DatabaseConfig;

    fn tiny() -> (Arc<Database>, Arc<TpcC>) {
        let db = Database::open(
            DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory(),
        );
        let tpcc = TpcC::load(&db, TpcCScale::tiny(), 42);
        (db, tpcc)
    }

    #[test]
    fn load_counts_match_scale() {
        let (db, c) = tiny();
        let s = c.scale;
        assert_eq!(db.record_count(c.t.warehouse), s.warehouses);
        assert_eq!(db.record_count(c.t.district), s.warehouses * DISTRICTS);
        assert_eq!(
            db.record_count(c.t.customer),
            s.warehouses * DISTRICTS * s.customers_per_district
        );
        assert_eq!(db.record_count(c.t.item), s.items);
        assert_eq!(db.record_count(c.t.stock), s.warehouses * s.items);
        assert_eq!(
            db.record_count(c.t.order),
            s.warehouses * DISTRICTS * s.initial_orders_per_district
        );
        let undelivered = db.record_count(c.t.new_order);
        let total_orders = db.record_count(c.t.order);
        let frac = undelivered as f64 / total_orders as f64;
        assert!((frac - 0.3).abs() < 0.05, "undelivered fraction {frac}");
    }

    #[test]
    fn all_five_transactions_run() {
        let (db, c) = tiny();
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(17);
        for kind in [
            TpcCTxn::NewOrder,
            TpcCTxn::Payment,
            TpcCTxn::OrderStatus,
            TpcCTxn::Delivery,
            TpcCTxn::StockLevel,
        ] {
            let mut committed = false;
            for _ in 0..20 {
                match c.run(kind, &s, &mut rng) {
                    Outcome::Commit => {
                        committed = true;
                        break;
                    }
                    Outcome::UserFail => {}
                    Outcome::SysAbort => {}
                }
            }
            assert!(committed, "{kind:?} never committed");
        }
    }

    #[test]
    fn new_order_advances_district_counter_and_creates_rows() {
        let (db, c) = tiny();
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(3);
        let orders_before = db.record_count(c.t.order);
        let mut commits = 0;
        for _ in 0..30 {
            if c.new_order(&s, &mut rng) == Outcome::Commit {
                commits += 1;
            }
        }
        assert_eq!(db.record_count(c.t.order), orders_before + commits);
        assert!(commits >= 25, "1% poison rate shouldn't dominate");
    }

    #[test]
    fn delivery_drains_new_orders() {
        let (db, c) = tiny();
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(9);
        let before = db.record_count(c.t.new_order);
        assert_eq!(c.delivery(&s, &mut rng), Outcome::Commit);
        let after = db.record_count(c.t.new_order);
        // One warehouse, all 10 districts with pending orders: 10 drained.
        assert_eq!(before - after, DISTRICTS);
    }

    #[test]
    fn payment_conserves_money_between_customer_and_warehouse() {
        let (db, c) = tiny();
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..50 {
            assert_eq!(c.payment(&s, &mut rng), Outcome::Commit);
        }
        // Sum of warehouse ytd == sum of district ytd == total payments.
        let mut w_sum = 0i64;
        for w in 1..=c.scale.warehouses {
            w_sum += get_i64(&db.peek(c.t.warehouse, w).unwrap(), 8);
        }
        let mut d_sum = 0i64;
        for w in 1..=c.scale.warehouses {
            for d in 1..=DISTRICTS {
                d_sum += get_i64(
                    &db.peek(c.t.district, dist_key(w, d)).unwrap(),
                    district_field::YTD,
                );
            }
        }
        assert_eq!(w_sum, d_sum);
        assert!(w_sum > 0);
    }

    #[test]
    fn key_packing_is_injective_at_bounds() {
        let mut keys = std::collections::HashSet::new();
        for w in [1u64, 7, 4095] {
            for d in 1..=DISTRICTS {
                for o in [0u64, 1, 1 << 20] {
                    for line in 0..16 {
                        assert!(keys.insert(order_line_key(w, d, o, line)));
                    }
                    assert!(keys.insert(order_key(w, d, o)));
                }
            }
        }
    }
}
