//! NDBB / TM1: Nokia's Network Database Benchmark.
//!
//! Four tables modeling a Home Location Register and seven very short
//! transactions (1-4 rows each). The benchmark's signature property — and
//! why the paper leans on it — is that transactions are so short that lock
//! manager overhead dominates, and that many transactions *fail on invalid
//! inputs by design* (the paper's quoted rates: getDest 76.1 %, getAccess
//! 37.5 %, updateSub 37.5 %, ins/delCF 68.75 %).
//!
//! The failure rates fall out of the data distribution rather than coin
//! flips:
//!
//! * each subscriber has 1-4 `access_info` rows (uniform), so a uniformly
//!   random `ai_type` hits with E\[K\]/4 = 62.5 % → 37.5 % fail;
//! * same for `special_facility` → `updateSub` fails 37.5 %;
//! * each (subscriber, sf_type) slot has a `call_forwarding` row per
//!   `start_time` with p = 0.5, so insert (slot must be free:
//!   0.625 x 0.5 = 31.25 % success) and delete (row must exist, same odds)
//!   both fail 68.75 %;
//! * `getDest` additionally requires `is_active` (85 %) and an end-time
//!   qualification (90 %): 0.625 x 0.85 x 0.5 x 0.9 = 23.9 % success →
//!   76.1 % fail.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sli_engine::{Database, Session, TxnError};

use crate::encode::*;
use crate::mix::{MixEntry, MixedWorkload, Outcome};

/// Subscriber record length.
const SUBSCRIBER_LEN: usize = 76;
/// Access-info record length.
const ACCESS_INFO_LEN: usize = 32;
/// Special-facility record length.
const SPECIAL_FACILITY_LEN: usize = 20;
/// Call-forwarding record length.
const CALL_FORWARDING_LEN: usize = 26;

/// Field offsets in the subscriber record.
mod sub_field {
    pub const S_ID: usize = 0;
    pub const SUB_NBR: usize = 8;
    pub const BITS: usize = 16;
    pub const HEX: usize = 20;
    pub const BYTE2: usize = 24;
    pub const MSC_LOCATION: usize = 28;
    pub const VLR_LOCATION: usize = 36;
    pub const FILLER: usize = 44;
}

/// The seven TM1 transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tm1Txn {
    /// GET_SUBSCRIBER_DATA (read-only, never fails).
    GetSubscriberData,
    /// GET_NEW_DESTINATION (read-only, 76.1 % fail).
    GetNewDestination,
    /// GET_ACCESS_DATA (read-only, 37.5 % fail).
    GetAccessData,
    /// UPDATE_SUBSCRIBER_DATA (update, 37.5 % fail).
    UpdateSubscriberData,
    /// UPDATE_LOCATION (update, never fails).
    UpdateLocation,
    /// INSERT_CALL_FORWARDING (update, 68.75 % fail).
    InsertCallForwarding,
    /// DELETE_CALL_FORWARDING (update, 68.75 % fail).
    DeleteCallForwarding,
}

struct Tables {
    subscriber: sli_engine::TableHandle,
    access_info: sli_engine::TableHandle,
    special_facility: sli_engine::TableHandle,
    call_forwarding: sli_engine::TableHandle,
}

/// A loaded TM1 database.
pub struct Tm1 {
    /// Number of subscribers (the scale factor; the paper uses 100,000).
    pub subscribers: u64,
    t: Tables,
}

fn ai_key(s_id: u64, ai_type: u8) -> u64 {
    s_id * 8 + ai_type as u64
}

fn sf_key(s_id: u64, sf_type: u8) -> u64 {
    s_id * 8 + sf_type as u64
}

fn cf_key(s_id: u64, sf_type: u8, start_slot: u8) -> u64 {
    sf_key(s_id, sf_type) * 4 + start_slot as u64
}

/// Fold a TM1 transaction result: TM1 "failures" are *committed*
/// transactions with an unsuccessful (empty) result — a no-match SELECT or
/// a zero-row UPDATE commits normally in the reference implementation. Only
/// key violations roll back.
fn complete(r: Result<bool, TxnError>) -> Outcome {
    match r {
        Ok(true) => Outcome::Commit,
        Ok(false) => Outcome::UserFail,
        Err(TxnError::UserAbort(_)) | Err(TxnError::NotFound) => Outcome::UserFail,
        Err(TxnError::Lock(_)) | Err(TxnError::Validation(_)) | Err(TxnError::Durability(_)) => {
            Outcome::SysAbort
        }
    }
}

impl Tm1 {
    /// Create the four tables and load `subscribers` subscribers with the
    /// distributions described in the module docs.
    pub fn load(db: &Arc<Database>, subscribers: u64, seed: u64) -> Arc<Tm1> {
        let t = Tables {
            subscriber: db.create_table("tm1_subscriber").expect("fresh db"),
            access_info: db.create_table("tm1_access_info").expect("fresh db"),
            special_facility: db.create_table("tm1_special_facility").expect("fresh db"),
            call_forwarding: db.create_table("tm1_call_forwarding").expect("fresh db"),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        for s_id in 1..=subscribers {
            let mut sub = vec![0u8; SUBSCRIBER_LEN];
            put_u64(&mut sub, sub_field::S_ID, s_id);
            put_u64(&mut sub, sub_field::SUB_NBR, s_id);
            put_u32(&mut sub, sub_field::BITS, rng.gen());
            put_u32(&mut sub, sub_field::HEX, rng.gen());
            put_u32(&mut sub, sub_field::BYTE2, rng.gen());
            put_u64(&mut sub, sub_field::MSC_LOCATION, rng.gen());
            put_u64(&mut sub, sub_field::VLR_LOCATION, rng.gen());
            put_filler(
                &mut sub,
                sub_field::FILLER,
                SUBSCRIBER_LEN - sub_field::FILLER,
                s_id,
            );
            db.bulk_insert(t.subscriber, s_id, None, &sub);

            // 1-4 access_info rows on distinct ai_types.
            let k_ai = rng.gen_range(1..=4usize);
            for &ai_type in pick_types(&mut rng, k_ai).iter() {
                let mut ai = vec![0u8; ACCESS_INFO_LEN];
                put_u64(&mut ai, 0, s_id);
                put_u8(&mut ai, 8, ai_type);
                put_u8(&mut ai, 9, rng.gen());
                put_u8(&mut ai, 10, rng.gen());
                put_filler(&mut ai, 11, ACCESS_INFO_LEN - 11, s_id ^ ai_type as u64);
                db.bulk_insert(t.access_info, ai_key(s_id, ai_type), None, &ai);
            }

            // 1-4 special_facility rows on distinct sf_types.
            let k_sf = rng.gen_range(1..=4usize);
            for &sf_type in pick_types(&mut rng, k_sf).iter() {
                let mut sf = vec![0u8; SPECIAL_FACILITY_LEN];
                put_u64(&mut sf, 0, s_id);
                put_u8(&mut sf, 8, sf_type);
                put_u8(&mut sf, 9, rng.gen_bool(0.85) as u8); // is_active
                put_u8(&mut sf, 10, rng.gen());
                put_u8(&mut sf, 11, rng.gen());
                put_filler(
                    &mut sf,
                    12,
                    SPECIAL_FACILITY_LEN - 12,
                    s_id ^ (sf_type as u64) << 8,
                );
                db.bulk_insert(t.special_facility, sf_key(s_id, sf_type), None, &sf);

                // Each start slot {0,8,16} present with p = 0.5;
                // end_time = start + 8*k, k in 1..=3.
                for start_slot in 0..3u8 {
                    if rng.gen_bool(0.5) {
                        let start_time = start_slot * 8;
                        let end_time = start_time + 8 * rng.gen_range(1..=3u8);
                        let mut cf = vec![0u8; CALL_FORWARDING_LEN];
                        put_u64(&mut cf, 0, s_id);
                        put_u8(&mut cf, 8, sf_type);
                        put_u8(&mut cf, 9, start_time);
                        put_u8(&mut cf, 10, end_time);
                        put_filler(&mut cf, 11, CALL_FORWARDING_LEN - 11, s_id);
                        db.bulk_insert(
                            t.call_forwarding,
                            cf_key(s_id, sf_type, start_slot),
                            None,
                            &cf,
                        );
                    }
                }
            }
        }
        Arc::new(Tm1 { subscribers, t })
    }

    fn rand_sid(&self, rng: &mut SmallRng) -> u64 {
        rng.gen_range(1..=self.subscribers)
    }

    /// GET_SUBSCRIBER_DATA: retrieve subscriber and location info.
    pub fn get_subscriber_data(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let s_id = self.rand_sid(rng);
        Outcome::from_result(s.run(|txn| {
            let row = txn.read_by_key(self.t.subscriber, s_id)?;
            // Touch the fields the real transaction returns.
            let _bits = get_u32(&row, sub_field::BITS);
            let _msc = get_u64(&row, sub_field::MSC_LOCATION);
            let _vlr = get_u64(&row, sub_field::VLR_LOCATION);
            Ok(())
        }))
    }

    /// GET_NEW_DESTINATION: current call-forwarding destination, if any.
    pub fn get_new_destination(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let s_id = self.rand_sid(rng);
        let sf_type = rng.gen_range(1..=4u8);
        let start_slot = rng.gen_range(0..3u8);
        // Qualification horizon: end_time must exceed start_time + 8*j with
        // j = 0 (p 0.7) or j = 1 (p 0.3); given k uniform in {1,2,3} this
        // qualifies 0.7 + 0.3 * 2/3 = 0.9 of existing rows.
        let j = if rng.gen_bool(0.7) { 0u8 } else { 1u8 };
        complete(s.run(|txn| {
            let sf = match txn.read_by_key(self.t.special_facility, sf_key(s_id, sf_type)) {
                Ok(row) => row,
                Err(TxnError::NotFound) => return Ok(false),
                Err(e) => return Err(e),
            };
            if get_u8(&sf, 9) == 0 {
                return Ok(false); // inactive: empty result, still commits
            }
            let cf =
                match txn.read_by_key(self.t.call_forwarding, cf_key(s_id, sf_type, start_slot)) {
                    Ok(row) => row,
                    Err(TxnError::NotFound) => return Ok(false),
                    Err(e) => return Err(e),
                };
            let start_time = get_u8(&cf, 9);
            let end_time = get_u8(&cf, 10);
            Ok(end_time > start_time + 8 * j)
        }))
    }

    /// GET_ACCESS_DATA: access validation data.
    pub fn get_access_data(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let s_id = self.rand_sid(rng);
        let ai_type = rng.gen_range(1..=4u8);
        complete(s.run(
            |txn| match txn.read_by_key(self.t.access_info, ai_key(s_id, ai_type)) {
                Ok(row) => {
                    let _d1 = get_u8(&row, 9);
                    Ok(true)
                }
                Err(TxnError::NotFound) => Ok(false),
                Err(e) => Err(e),
            },
        ))
    }

    /// UPDATE_SUBSCRIBER_DATA: update profile bits + facility data.
    pub fn update_subscriber_data(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let s_id = self.rand_sid(rng);
        let sf_type = rng.gen_range(1..=4u8);
        let new_bits: u32 = rng.gen();
        let new_data_a: u8 = rng.gen();
        complete(s.run(|txn| {
            txn.update_by_key(self.t.subscriber, s_id, |old| {
                let mut row = old.to_vec();
                put_u32(&mut row, sub_field::BITS, new_bits);
                row
            })?;
            // "Unsuccessful" when the facility row does not exist (the
            // 37.5 % case): the UPDATE matches zero rows, but the
            // transaction — including the subscriber update — commits.
            match txn.update_by_key(self.t.special_facility, sf_key(s_id, sf_type), |old| {
                let mut row = old.to_vec();
                put_u8(&mut row, 11, new_data_a);
                row
            }) {
                Ok(()) => Ok(true),
                Err(TxnError::NotFound) => Ok(false),
                Err(e) => Err(e),
            }
        }))
    }

    /// UPDATE_LOCATION: move a subscriber to a new VLR.
    pub fn update_location(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let s_id = self.rand_sid(rng);
        let new_vlr: u64 = rng.gen();
        Outcome::from_result(s.run(|txn| {
            txn.update_by_key(self.t.subscriber, s_id, |old| {
                let mut row = old.to_vec();
                put_u64(&mut row, sub_field::VLR_LOCATION, new_vlr);
                row
            })?;
            Ok(())
        }))
    }

    /// INSERT_CALL_FORWARDING: add a forwarding destination.
    pub fn insert_call_forwarding(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let s_id = self.rand_sid(rng);
        let sf_type = rng.gen_range(1..=4u8);
        let start_slot = rng.gen_range(0..3u8);
        let end_k = rng.gen_range(1..=3u8);
        complete(s.run(|txn| {
            // The real transaction first resolves sub_nbr -> s_id.
            let _sub = txn.read_by_key(self.t.subscriber, s_id)?;
            match txn.read_by_key(self.t.special_facility, sf_key(s_id, sf_type)) {
                Ok(_) => {}
                Err(TxnError::NotFound) => return Ok(false),
                Err(e) => return Err(e),
            }
            let key = cf_key(s_id, sf_type, start_slot);
            if txn.lookup(self.t.call_forwarding, key).is_some() {
                // Primary-key violation: this one genuinely rolls back.
                return Err(txn.user_abort("forwarding row already exists"));
            }
            let start_time = start_slot * 8;
            let mut cf = vec![0u8; CALL_FORWARDING_LEN];
            put_u64(&mut cf, 0, s_id);
            put_u8(&mut cf, 8, sf_type);
            put_u8(&mut cf, 9, start_time);
            put_u8(&mut cf, 10, start_time + 8 * end_k);
            put_filler(&mut cf, 11, CALL_FORWARDING_LEN - 11, s_id);
            txn.insert(self.t.call_forwarding, key, &cf)?;
            Ok(true)
        }))
    }

    /// DELETE_CALL_FORWARDING: remove a forwarding destination.
    pub fn delete_call_forwarding(&self, s: &Session, rng: &mut SmallRng) -> Outcome {
        let s_id = self.rand_sid(rng);
        let sf_type = rng.gen_range(1..=4u8);
        let start_slot = rng.gen_range(0..3u8);
        complete(s.run(|txn| {
            let _sub = txn.read_by_key(self.t.subscriber, s_id)?;
            match txn.delete_by_key(
                self.t.call_forwarding,
                cf_key(s_id, sf_type, start_slot),
                None,
            ) {
                Ok(()) => Ok(true),
                Err(TxnError::NotFound) => Ok(false), // zero rows: commits
                Err(e) => Err(e),
            }
        }))
    }

    /// Run one named transaction.
    pub fn run(&self, kind: Tm1Txn, s: &Session, rng: &mut SmallRng) -> Outcome {
        match kind {
            Tm1Txn::GetSubscriberData => self.get_subscriber_data(s, rng),
            Tm1Txn::GetNewDestination => self.get_new_destination(s, rng),
            Tm1Txn::GetAccessData => self.get_access_data(s, rng),
            Tm1Txn::UpdateSubscriberData => self.update_subscriber_data(s, rng),
            Tm1Txn::UpdateLocation => self.update_location(s, rng),
            Tm1Txn::InsertCallForwarding => self.insert_call_forwarding(s, rng),
            Tm1Txn::DeleteCallForwarding => self.delete_call_forwarding(s, rng),
        }
    }

    fn entry(self: &Arc<Self>, kind: Tm1Txn, name: &'static str, weight: f64) -> MixEntry {
        let me = Arc::clone(self);
        MixEntry {
            name,
            weight,
            run: Box::new(move |s, rng| me.run(kind, s, rng)),
        }
    }

    /// The full NDBB mix at the paper's frequencies.
    pub fn ndbb_mix(self: &Arc<Self>) -> MixedWorkload {
        MixedWorkload::new(
            "NDBB Mix",
            vec![
                self.entry(Tm1Txn::GetSubscriberData, "getSub", 35.0),
                self.entry(Tm1Txn::GetNewDestination, "getDest", 10.0),
                self.entry(Tm1Txn::GetAccessData, "getAccess", 35.0),
                self.entry(Tm1Txn::UpdateSubscriberData, "updateSub", 2.0),
                self.entry(Tm1Txn::UpdateLocation, "updateLoc", 14.0),
                self.entry(Tm1Txn::InsertCallForwarding, "insCF", 2.0),
                self.entry(Tm1Txn::DeleteCallForwarding, "delCF", 2.0),
            ],
        )
    }

    /// The paper's "Forward mix": getDest with the two call-forwarding
    /// writers (relative weights 71.4 : 28.5 : 28.5 as printed).
    pub fn forward_mix(self: &Arc<Self>) -> MixedWorkload {
        MixedWorkload::new(
            "Forward mix",
            vec![
                self.entry(Tm1Txn::GetNewDestination, "getDest", 71.4),
                self.entry(Tm1Txn::InsertCallForwarding, "insCF", 28.5),
                self.entry(Tm1Txn::DeleteCallForwarding, "delCF", 28.5),
            ],
        )
    }

    /// A single-transaction workload (the per-transaction columns of
    /// Figures 6 and 8-11).
    pub fn single(self: &Arc<Self>, kind: Tm1Txn) -> MixedWorkload {
        let (name, label) = match kind {
            Tm1Txn::GetSubscriberData => ("getSub", "getSub"),
            Tm1Txn::GetNewDestination => ("getDest", "getDest"),
            Tm1Txn::GetAccessData => ("getAccess", "getAccess"),
            Tm1Txn::UpdateSubscriberData => ("updateSub", "updateSub"),
            Tm1Txn::UpdateLocation => ("updateLoc", "updateLoc"),
            Tm1Txn::InsertCallForwarding => ("insCF", "insCF"),
            Tm1Txn::DeleteCallForwarding => ("delCF", "delCF"),
        };
        MixedWorkload::new(label, vec![self.entry(kind, name, 1.0)])
    }

    /// Table handle of the subscriber table (tests/diagnostics).
    pub fn subscriber_table(&self) -> sli_engine::TableHandle {
        self.t.subscriber
    }
}

fn pick_types(rng: &mut SmallRng, k: usize) -> Vec<u8> {
    let mut types = [1u8, 2, 3, 4];
    for i in (1..4).rev() {
        let j = rng.gen_range(0..=i);
        types.swap(i, j);
    }
    types[..k].to_vec()
}

/// Convenience: outcome of a raw engine call in TM1 semantics.
pub fn outcome_of(r: Result<(), TxnError>) -> Outcome {
    Outcome::from_result(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sli_engine::DatabaseConfig;

    fn small_tm1() -> (Arc<Database>, Arc<Tm1>) {
        let db = Database::open(
            DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory(),
        );
        let tm1 = Tm1::load(&db, 500, 7);
        (db, tm1)
    }

    #[test]
    fn load_populates_expected_row_counts() {
        let (db, tm1) = small_tm1();
        let n = tm1.subscribers;
        assert_eq!(db.record_count(tm1.t.subscriber), n);
        // E[access_info rows] = 2.5 per subscriber.
        let ai = db.record_count(tm1.t.access_info) as f64 / n as f64;
        assert!((ai - 2.5).abs() < 0.3, "ai rows/sub = {ai}");
        let sf = db.record_count(tm1.t.special_facility) as f64 / n as f64;
        assert!((sf - 2.5).abs() < 0.3, "sf rows/sub = {sf}");
        // E[cf rows] = 2.5 sf * 1.5 = 3.75 per subscriber.
        let cf = db.record_count(tm1.t.call_forwarding) as f64 / n as f64;
        assert!((cf - 3.75).abs() < 0.5, "cf rows/sub = {cf}");
    }

    fn measure_fail_rate(tm1: &Arc<Tm1>, db: &Arc<Database>, kind: Tm1Txn, n: usize) -> f64 {
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut fails = 0;
        for _ in 0..n {
            match tm1.run(kind, &s, &mut rng) {
                Outcome::UserFail => fails += 1,
                Outcome::Commit => {}
                Outcome::SysAbort => panic!("unexpected system abort"),
            }
        }
        fails as f64 / n as f64
    }

    #[test]
    fn failure_rates_match_the_paper() {
        let (db, tm1) = small_tm1();
        let n = 4000;
        assert_eq!(
            measure_fail_rate(&tm1, &db, Tm1Txn::GetSubscriberData, n),
            0.0
        );
        assert_eq!(measure_fail_rate(&tm1, &db, Tm1Txn::UpdateLocation, n), 0.0);
        let get_access = measure_fail_rate(&tm1, &db, Tm1Txn::GetAccessData, n);
        assert!(
            (get_access - 0.375).abs() < 0.05,
            "getAccess fail {get_access}"
        );
        let update_sub = measure_fail_rate(&tm1, &db, Tm1Txn::UpdateSubscriberData, n);
        assert!(
            (update_sub - 0.375).abs() < 0.05,
            "updateSub fail {update_sub}"
        );
        let get_dest = measure_fail_rate(&tm1, &db, Tm1Txn::GetNewDestination, n);
        assert!((get_dest - 0.761).abs() < 0.05, "getDest fail {get_dest}");
    }

    #[test]
    fn call_forwarding_churn_stays_balanced() {
        let (db, tm1) = small_tm1();
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(5);
        let before = db.record_count(tm1.t.call_forwarding) as i64;
        let mut ins = 0i64;
        let mut del = 0i64;
        for _ in 0..2000 {
            if tm1.insert_call_forwarding(&s, &mut rng) == Outcome::Commit {
                ins += 1;
            }
            if tm1.delete_call_forwarding(&s, &mut rng) == Outcome::Commit {
                del += 1;
            }
        }
        let after = db.record_count(tm1.t.call_forwarding) as i64;
        assert_eq!(after - before, ins - del);
        // Both succeed roughly 31.25 % of the time.
        assert!((ins as f64 / 2000.0 - 0.3125).abs() < 0.06);
        assert!((del as f64 / 2000.0 - 0.3125).abs() < 0.06);
    }

    #[test]
    fn ndbb_mix_runs_all_transaction_types() {
        let (db, tm1) = small_tm1();
        let mix = tm1.ndbb_mix();
        assert_eq!(mix.len(), 7);
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut commits = 0;
        for _ in 0..500 {
            if mix.run_one(&s, &mut rng).1 == Outcome::Commit {
                commits += 1;
            }
        }
        assert!(commits > 200, "mix should mostly commit: {commits}");
    }

    #[test]
    fn unsuccessful_update_subscriber_still_commits_first_statement() {
        // TM1 semantics: the zero-row special-facility UPDATE does not roll
        // the transaction back — the subscriber bits change persists.
        let db = Database::open(
            DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory(),
        );
        let tm1 = Tm1::load(&db, 50, 11);
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut saw_failed_change = false;
        for _ in 0..200 {
            let before: Vec<_> = (1..=50u64)
                .map(|sid| get_u32(&db.peek(tm1.t.subscriber, sid).unwrap(), sub_field::BITS))
                .collect();
            let out = tm1.update_subscriber_data(&s, &mut rng);
            let after: Vec<_> = (1..=50u64)
                .map(|sid| get_u32(&db.peek(tm1.t.subscriber, sid).unwrap(), sub_field::BITS))
                .collect();
            if out == Outcome::UserFail && before != after {
                saw_failed_change = true;
            }
        }
        assert!(
            saw_failed_change,
            "some unsuccessful updateSub must still have committed its first statement"
        );
    }

    #[test]
    fn failed_reads_commit_rather_than_abort() {
        // "Failures" must not roll back: the lock-manager commit counter
        // advances for UserFail outcomes of the read transactions.
        let db = Database::open(
            DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory(),
        );
        let tm1 = Tm1::load(&db, 100, 5);
        let s = db.session();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut fails = 0;
        for _ in 0..300 {
            if tm1.get_access_data(&s, &mut rng) == Outcome::UserFail {
                fails += 1;
            }
        }
        assert!(fails > 50, "expect ~37.5% failures, got {fails}/300");
        let stats = db.lock_stats();
        assert_eq!(stats.commits, 300, "failed reads still commit");
        assert_eq!(stats.aborts, 0);
    }
}
