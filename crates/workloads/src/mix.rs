//! Transaction mixes: weighted selections of benchmark transactions.

use rand::rngs::SmallRng;
use rand::Rng;
use sli_engine::{Session, TxnError};

/// Outcome of one benchmark transaction attempt, matching the paper's
/// accounting: *failed* transactions (invalid inputs) are part of normal
/// NDBB behaviour and count toward the attempt rate; *system aborts*
/// (deadlock/timeout victims) are retried by harness policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Committed successfully.
    Commit,
    /// Rolled back by application validation (the benchmark's expected
    /// "failure due to invalid input").
    UserFail,
    /// Rolled back by the system (deadlock victim, lock timeout).
    SysAbort,
}

impl Outcome {
    /// Fold an engine result into an outcome.
    pub fn from_result<T>(r: Result<T, TxnError>) -> Outcome {
        match r {
            Ok(_) => Outcome::Commit,
            Err(TxnError::UserAbort(_)) | Err(TxnError::NotFound) => Outcome::UserFail,
            // Lock victims and MVCC validation losers are system aborts
            // retried by harness policy. A failed commit-time log force
            // counts the same way — the txn was never acknowledged — but
            // is NOT retryable: the log device is poisoned.
            Err(TxnError::Lock(_))
            | Err(TxnError::Validation(_))
            | Err(TxnError::Durability(_)) => Outcome::SysAbort,
        }
    }
}

/// A single named transaction within a mix.
pub struct MixEntry {
    /// Transaction name (e.g. `"getSub"`).
    pub name: &'static str,
    /// Relative weight (needn't sum to 1).
    pub weight: f64,
    /// Executes one instance.
    pub run: MixFn,
}

/// Boxed transaction body driven by [`MixedWorkload`].
pub type MixFn = Box<dyn Fn(&Session, &mut SmallRng) -> Outcome + Send + Sync>;

/// A weighted transaction mix, the unit the harness drives.
pub struct MixedWorkload {
    /// Display name (e.g. `"NDBB Mix"`).
    pub name: String,
    entries: Vec<MixEntry>,
    cumulative: Vec<f64>,
}

impl MixedWorkload {
    /// Build a mix from entries; weights are normalized internally.
    pub fn new(name: impl Into<String>, entries: Vec<MixEntry>) -> Self {
        assert!(!entries.is_empty(), "a mix needs at least one transaction");
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        let mut acc = 0.0;
        let cumulative = entries
            .iter()
            .map(|e| {
                acc += e.weight / total;
                acc
            })
            .collect();
        MixedWorkload {
            name: name.into(),
            entries,
            cumulative,
        }
    }

    /// Pick one transaction index by weight, consuming one rng draw.
    /// Split from execution so drivers that schedule work (the open-loop
    /// pacer) can decide *what* arrives independently of running it.
    pub fn pick(&self, rng: &mut SmallRng) -> usize {
        let x: f64 = rng.gen();
        self.cumulative
            .iter()
            .position(|c| x <= *c)
            .unwrap_or(self.entries.len() - 1)
    }

    /// Run the transaction at `idx` (as returned by [`pick`](Self::pick)).
    pub fn run_at(&self, idx: usize, session: &Session, rng: &mut SmallRng) -> Outcome {
        (self.entries[idx].run)(session, rng)
    }

    /// Pick one transaction by weight and run it.
    pub fn run_one(&self, session: &Session, rng: &mut SmallRng) -> (usize, Outcome) {
        let idx = self.pick(rng);
        (idx, self.run_at(idx, session, rng))
    }

    /// Names of the transactions in this mix, in entry order.
    pub fn transaction_names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Decompose into entries (for building merged mixes).
    pub fn into_entries(self) -> Vec<MixEntry> {
        self.entries
    }

    /// Merge several mixes into one, giving each part the given share of
    /// the merged mix (entry weights are scaled within their part). Used by
    /// the Section 4.4 *bimodal workload* experiment, where two transaction
    /// groups with disjoint lock sets share the same agent threads.
    pub fn merged(name: impl Into<String>, parts: Vec<(f64, MixedWorkload)>) -> Self {
        let mut entries = Vec::new();
        for (share, part) in parts {
            let part_total: f64 = part.entries.iter().map(|e| e.weight).sum();
            for mut e in part.into_entries() {
                e.weight = e.weight / part_total * share;
                entries.push(e);
            }
        }
        MixedWorkload::new(name, entries)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mix is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn noop_entry(name: &'static str, weight: f64) -> MixEntry {
        MixEntry {
            name,
            weight,
            run: Box::new(|_, _| Outcome::Commit),
        }
    }

    fn dummy_session() -> Session {
        let db = sli_engine::Database::open(sli_engine::DatabaseConfig::default());
        db.session()
    }

    #[test]
    fn weights_are_respected_approximately() {
        let mix = MixedWorkload::new("m", vec![noop_entry("a", 80.0), noop_entry("b", 20.0)]);
        let s = dummy_session();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            let (idx, _) = mix.run_one(&s, &mut rng);
            counts[idx] += 1;
        }
        let frac_a = counts[0] as f64 / 10_000.0;
        assert!((frac_a - 0.8).abs() < 0.03, "frac_a = {frac_a}");
    }

    #[test]
    fn single_entry_mix_always_picks_it() {
        let mix = MixedWorkload::new("m", vec![noop_entry("only", 1.0)]);
        let s = dummy_session();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(mix.run_one(&s, &mut rng).0, 0);
        }
        assert_eq!(mix.transaction_names(), vec!["only"]);
    }

    #[test]
    fn pick_and_run_at_compose_to_run_one() {
        let mix = MixedWorkload::new(
            "m",
            vec![
                MixEntry {
                    name: "fail",
                    weight: 1.0,
                    run: Box::new(|_, _| Outcome::UserFail),
                },
                MixEntry {
                    name: "ok",
                    weight: 1.0,
                    run: Box::new(|_, _| Outcome::Commit),
                },
            ],
        );
        let s = dummy_session();
        let mut rng = SmallRng::seed_from_u64(9);
        // run_at executes exactly the named entry.
        assert_eq!(mix.run_at(0, &s, &mut rng), Outcome::UserFail);
        assert_eq!(mix.run_at(1, &s, &mut rng), Outcome::Commit);
        // pick stays in range.
        for _ in 0..100 {
            assert!(mix.pick(&mut rng) < mix.len());
        }
    }

    #[test]
    fn outcome_folding() {
        assert_eq!(Outcome::from_result::<()>(Ok(())), Outcome::Commit);
        assert_eq!(
            Outcome::from_result::<()>(Err(TxnError::UserAbort("x"))),
            Outcome::UserFail
        );
        assert_eq!(
            Outcome::from_result::<()>(Err(TxnError::NotFound)),
            Outcome::UserFail
        );
        assert_eq!(
            Outcome::from_result::<()>(Err(TxnError::Lock(sli_core::LockError::TxnAborted))),
            Outcome::SysAbort
        );
    }
}
