//! Fixed-width record encoding helpers.
//!
//! Records are flat byte layouts with little-endian integer fields at fixed
//! offsets, like the paper's hard-coded (schema-aware) transaction code
//! reading Shore records. Encoding/decoding cost is part of the realistic
//! per-transaction work.

/// Write a `u64` at `offset`.
pub fn put_u64(buf: &mut [u8], offset: usize, v: u64) {
    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u64` at `offset`.
pub fn get_u64(buf: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(buf[offset..offset + 8].try_into().expect("field bounds"))
}

/// Write an `i64` at `offset`.
pub fn put_i64(buf: &mut [u8], offset: usize, v: i64) {
    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read an `i64` at `offset`.
pub fn get_i64(buf: &[u8], offset: usize) -> i64 {
    i64::from_le_bytes(buf[offset..offset + 8].try_into().expect("field bounds"))
}

/// Write a `u32` at `offset`.
pub fn put_u32(buf: &mut [u8], offset: usize, v: u32) {
    buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `offset`.
pub fn get_u32(buf: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("field bounds"))
}

/// Write a `u8` at `offset`.
pub fn put_u8(buf: &mut [u8], offset: usize, v: u8) {
    buf[offset] = v;
}

/// Read a `u8` at `offset`.
pub fn get_u8(buf: &[u8], offset: usize) -> u8 {
    buf[offset]
}

/// Fill `len` bytes at `offset` with deterministic filler derived from
/// `seed` (standing in for the alphanumeric padding real benchmark rows
/// carry).
pub fn put_filler(buf: &mut [u8], offset: usize, len: usize, seed: u64) {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    for b in &mut buf[offset..offset + len] {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        *b = b'a' + (z % 26) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = vec![0u8; 32];
        put_u64(&mut buf, 8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(get_u64(&buf, 8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(get_u64(&buf, 0), 0);
    }

    #[test]
    fn i64_roundtrip_negative() {
        let mut buf = vec![0u8; 16];
        put_i64(&mut buf, 0, -123_456_789);
        assert_eq!(get_i64(&buf, 0), -123_456_789);
    }

    #[test]
    fn u32_and_u8_roundtrip() {
        let mut buf = vec![0u8; 8];
        put_u32(&mut buf, 0, 77);
        put_u8(&mut buf, 4, 9);
        assert_eq!(get_u32(&buf, 0), 77);
        assert_eq!(get_u8(&buf, 4), 9);
    }

    #[test]
    fn filler_is_deterministic_alpha() {
        let mut a = vec![0u8; 20];
        let mut b = vec![0u8; 20];
        put_filler(&mut a, 0, 20, 7);
        put_filler(&mut b, 0, 20, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|c| c.is_ascii_lowercase()));
        let mut c = vec![0u8; 20];
        put_filler(&mut c, 0, 20, 8);
        assert_ne!(a, c);
    }
}
