//! # sli-workloads — the paper's three benchmarks
//!
//! Implements the ten transactions / mixes the paper evaluates (Section
//! 5.1):
//!
//! * **NDBB / TM1** ([`tm1::Tm1`]): Nokia's Network Database Benchmark —
//!   seven Home-Location-Register transactions over four tables, extremely
//!   short (1-4 rows), with the paper's characteristic failure rates
//!   (25-75 % of transactions fail on invalid inputs). Plus the "forward
//!   mix" and the full NDBB mix.
//! * **TPC-B** ([`tpcb::TpcB`]): the classic database stress test — one
//!   deposit/withdrawal transaction touching all four tables.
//! * **TPC-C** ([`tpcc::TpcC`]): the retailer OLTP benchmark — five
//!   transactions, the paper's "small mix" (Payment / New Order / Order
//!   Status at 46.7/48.9/4.3 %) and the full mix.
//!
//! Each transaction is hard-coded against the engine API, mirroring the
//! paper's statically-compiled stored procedures.

#![warn(missing_docs)]

pub mod encode;
pub mod mix;
pub mod tm1;
pub mod tpcb;
pub mod tpcc;

pub use mix::{MixedWorkload, Outcome};
