//! # sli-bench — benchmark targets for the SLI reproduction.
//!
//! This crate hosts two kinds of benchmarks (see `benches/`):
//!
//! * Criterion microbenchmarks of the lock manager's hot paths
//!   (`micro_lockmgr`): acquire/release round trips, the SLI reclaim CAS
//!   versus a full lock-manager acquire, hash-table probes, and latch
//!   acquisition.
//! * One figure-regeneration bench per evaluation figure of the paper
//!   (`fig1` … `fig11`, `harness = false`), each printing the same series
//!   the paper plots. Scale via `SLI_BENCH_SECONDS` / `SLI_BENCH_MAX_AGENTS`
//!   environment variables.

/// Read an environment knob with a default, for bench scaling.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
