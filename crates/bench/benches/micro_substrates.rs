//! Criterion microbenchmarks of the substrate crates: latches, log buffer,
//! heap pages, indexes, and the engine's end-to-end row operations.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sli_engine::{Database, DatabaseConfig};
use sli_profiler::Component;

fn bench_latch(c: &mut Criterion) {
    let latch = sli_latch::Latch::new(Component::Other);
    c.bench_function("latch/uncontended_acquire_release", |b| {
        b.iter(|| {
            let g = latch.acquire();
            criterion::black_box(g.was_contended());
        })
    });
    let cell = sli_latch::Latched::new(Component::Other, 0u64);
    c.bench_function("latch/latched_cell_increment", |b| {
        b.iter(|| {
            *cell.lock() += 1;
        })
    });
}

fn bench_profiler(c: &mut Criterion) {
    use sli_profiler::{enter, Category};
    c.bench_function("profiler/enter_exit", |b| {
        b.iter(|| {
            let _g = enter(Category::Work(Component::LockManager));
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    let log = sli_wal::LogManager::new(sli_wal::LogConfig::default());
    c.bench_function("wal/append_update_record", |b| {
        b.iter(|| {
            log.append(sli_wal::LogRecord::update(
                1,
                2,
                3,
                4,
                b"0123456789abcdef",
                b"fedcba9876543210",
            ))
        })
    });
}

fn bench_storage(c: &mut Criterion) {
    let heap = sli_storage::HeapTable::new();
    let mut rids = Vec::new();
    for i in 0..10_000u64 {
        rids.push(heap.insert(bytes::Bytes::copy_from_slice(&i.to_le_bytes())));
    }
    let mut rng = SmallRng::seed_from_u64(5);
    c.bench_function("storage/heap_read", |b| {
        b.iter(|| {
            let rid = rids[rng.gen_range(0..rids.len())];
            criterion::black_box(heap.read(rid))
        })
    });

    let idx = sli_storage::HashIndex::new();
    for (i, rid) in rids.iter().enumerate() {
        idx.insert(i as u64, *rid);
    }
    c.bench_function("storage/hash_index_probe", |b| {
        b.iter(|| criterion::black_box(idx.get(rng.gen_range(0..10_000))))
    });

    let ord = sli_storage::OrderedIndex::new();
    for (i, rid) in rids.iter().enumerate() {
        ord.insert(i as u64, *rid);
    }
    c.bench_function("storage/ordered_range_20", |b| {
        b.iter(|| {
            let lo = rng.gen_range(0..9_980u64);
            criterion::black_box(ord.range(lo, lo + 19, 20))
        })
    });
}

fn bench_engine_ops(c: &mut Criterion) {
    let db =
        Database::open(DatabaseConfig::with_policy(sli_engine::PolicyKind::PaperSli).in_memory());
    let t = db.create_table("bench").unwrap();
    for k in 0..10_000u64 {
        db.bulk_insert(t, k, None, &k.to_le_bytes());
    }
    let s = db.session();
    let mut rng = SmallRng::seed_from_u64(9);
    c.bench_function("engine/read_txn", |b| {
        b.iter(|| {
            let k = rng.gen_range(0..10_000u64);
            s.run(|txn| txn.read_by_key(t, k).map(|_| ())).unwrap()
        })
    });
    c.bench_function("engine/update_txn", |b| {
        b.iter(|| {
            let k = rng.gen_range(0..10_000u64);
            s.run(|txn| {
                txn.update_by_key(t, k, |old| {
                    let v = u64::from_le_bytes(old.try_into().unwrap());
                    (v + 1).to_le_bytes().to_vec()
                })
            })
            .unwrap()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_latch, bench_profiler, bench_wal, bench_storage, bench_engine_ops
);
criterion_main!(benches);
