//! Criterion microbenchmarks of the lock manager's hot paths.
//!
//! The headline comparison is `sli_reclaim` vs `fresh_acquire`: the paper's
//! claim is that inheritance replaces a latch-protected release+acquire
//! pair with one atomic compare-and-swap.

use criterion::{criterion_group, criterion_main, Criterion};
use sli_core::{
    FastPathConfig, LockId, LockManager, LockManagerConfig, LockMode, PolicyKind, TableId,
    TxnLockState,
};

fn rec(p: u32, s: u16) -> LockId {
    LockId::Record(TableId(1), p, s)
}

/// Full transaction cycle: begin, one record lock (4-level hierarchy walk),
/// commit-release. Baseline configuration.
fn bench_lock_cycle(c: &mut Criterion) {
    let m = LockManager::new(LockManagerConfig::with_policy(PolicyKind::Baseline));
    let mut agent = m.register_agent().unwrap();
    let mut ts = TxnLockState::new(agent.slot());
    c.bench_function("lockmgr/txn_cycle_1_record", |b| {
        b.iter(|| {
            m.begin(&mut ts, &mut agent);
            m.lock(&mut ts, &mut agent, rec(0, 0), LockMode::S).unwrap();
            m.end_txn(&mut ts, &mut agent, true);
        })
    });
    c.bench_function("lockmgr/txn_cycle_8_records", |b| {
        b.iter(|| {
            m.begin(&mut ts, &mut agent);
            for i in 0..8u16 {
                m.lock(&mut ts, &mut agent, rec(0, i), LockMode::S).unwrap();
            }
            m.end_txn(&mut ts, &mut agent, true);
        })
    });
}

/// Repeat-acquisition of an already-held lock: the transaction-private
/// lock-cache fast path.
fn bench_cache_hit(c: &mut Criterion) {
    let m = LockManager::new(LockManagerConfig::with_policy(PolicyKind::Baseline));
    let mut agent = m.register_agent().unwrap();
    let mut ts = TxnLockState::new(agent.slot());
    m.begin(&mut ts, &mut agent);
    m.lock(&mut ts, &mut agent, rec(0, 0), LockMode::S).unwrap();
    c.bench_function("lockmgr/cache_hit", |b| {
        b.iter(|| {
            m.lock(&mut ts, &mut agent, rec(0, 0), LockMode::S).unwrap();
        })
    });
    m.end_txn(&mut ts, &mut agent, true);
}

/// The SLI fast path (CAS reclaim of an inherited lock) against the full
/// lock-manager acquire it replaces. Measured as a whole one-record
/// transaction, with the hierarchy hot so db/table/page flow via SLI.
fn bench_sli_reclaim_vs_fresh(c: &mut Criterion) {
    // SLI engine: heat the hierarchy so it is inherited between iterations.
    // Grant-word fast path off: this target measures the *reclaim* CAS, so
    // the primed acquisitions must be queued (inheritable) requests.
    let mut cfg = LockManagerConfig::with_policy(PolicyKind::PaperSli);
    cfg.fastpath = FastPathConfig::disabled();
    let m = LockManager::new(cfg);
    let mut agent = m.register_agent().unwrap();
    let mut ts = TxnLockState::new(agent.slot());
    // Prime: run one transaction and heat the high-level heads.
    m.begin(&mut ts, &mut agent);
    m.lock(&mut ts, &mut agent, rec(0, 0), LockMode::S).unwrap();
    for id in [
        LockId::Database,
        LockId::Table(TableId(1)),
        LockId::Page(TableId(1), 0),
    ] {
        let h = m.head(id).unwrap();
        for _ in 0..16 {
            h.hot().record(true);
        }
    }
    m.end_txn(&mut ts, &mut agent, true);
    assert_eq!(agent.inherited_count(), 3);
    // A `--bench <filter>` run may skip this target entirely; only assert
    // the reclaim invariant when the loop actually executed.
    let ran = std::cell::Cell::new(false);
    c.bench_function("lockmgr/txn_cycle_sli_inherited", |b| {
        ran.set(true);
        b.iter(|| {
            m.begin(&mut ts, &mut agent);
            m.lock(&mut ts, &mut agent, rec(0, 0), LockMode::S).unwrap();
            // Keep the heads hot: reclaim paths never latch, so the window
            // freezes; this just documents the steady state.
            m.end_txn(&mut ts, &mut agent, true);
        })
    });
    if ran.get() {
        let stats = m.stats().snapshot();
        assert!(stats.sli_reclaimed > 0, "bench must exercise reclaims");
    }
}

/// Raw reclaim CAS vs a full fresh acquire of one table lock.
fn bench_reclaim_cas(c: &mut Criterion) {
    let m = LockManager::new(LockManagerConfig::with_policy(PolicyKind::PaperSli));
    let mut agent = m.register_agent().unwrap();
    let mut ts = TxnLockState::new(agent.slot());

    c.bench_function("lockmgr/fresh_acquire_release_table", |b| {
        b.iter(|| {
            m.begin(&mut ts, &mut agent);
            m.lock(&mut ts, &mut agent, LockId::Table(TableId(2)), LockMode::IS)
                .unwrap();
            m.end_txn(&mut ts, &mut agent, true);
        })
    });
}

/// Lock upgrades: IS -> IX on a held table lock.
fn bench_upgrade(c: &mut Criterion) {
    let m = LockManager::new(LockManagerConfig::with_policy(PolicyKind::Baseline));
    let mut agent = m.register_agent().unwrap();
    let mut ts = TxnLockState::new(agent.slot());
    c.bench_function("lockmgr/upgrade_is_to_ix", |b| {
        b.iter(|| {
            m.begin(&mut ts, &mut agent);
            m.lock(&mut ts, &mut agent, LockId::Table(TableId(3)), LockMode::IS)
                .unwrap();
            m.lock(&mut ts, &mut agent, LockId::Table(TableId(3)), LockMode::IX)
                .unwrap();
            m.end_txn(&mut ts, &mut agent, true);
        })
    });
}

/// Contended throughput: N threads hammering the same table's records —
/// the scenario where the head latch becomes the bottleneck. One iteration
/// = one full transaction on the calling thread while 7 background threads
/// generate steady traffic.
fn bench_contended_acquire(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    for (name, sli) in [("baseline", false), ("sli", true)] {
        let kind = if sli {
            PolicyKind::PaperSli
        } else {
            PolicyKind::Baseline
        };
        let m = LockManager::new(LockManagerConfig::with_policy(kind));
        let stop = Arc::new(AtomicBool::new(false));
        let mut bg = Vec::new();
        for t in 0..7u16 {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            bg.push(std::thread::spawn(move || {
                let mut agent = m.register_agent().unwrap();
                let mut ts = TxnLockState::new(agent.slot());
                let mut i = 0u16;
                while !stop.load(Ordering::Relaxed) {
                    m.begin(&mut ts, &mut agent);
                    let _ = m.lock(&mut ts, &mut agent, rec(t as u32 % 4, i % 64), LockMode::S);
                    m.end_txn(&mut ts, &mut agent, true);
                    i = i.wrapping_add(1);
                }
                m.retire_agent(&mut agent);
            }));
        }
        let mut agent = m.register_agent().unwrap();
        let mut ts = TxnLockState::new(agent.slot());
        c.bench_function(&format!("lockmgr/contended_txn_cycle_{name}"), |b| {
            b.iter(|| {
                m.begin(&mut ts, &mut agent);
                m.lock(&mut ts, &mut agent, rec(5, 0), LockMode::S).unwrap();
                m.end_txn(&mut ts, &mut agent, true);
            })
        });
        stop.store(true, Ordering::Relaxed);
        for h in bg {
            h.join().unwrap();
        }
    }
}

/// The grant-word A/B: compatible-mode (IS) acquire/release cycles against
/// one hot table head, grant-word fast path vs pure latched path, with the
/// thread count swept from 1 to 4x the available cores. One iteration =
/// one full begin / lock(table, IS) / commit cycle on the measured thread
/// while the background threads run the same loop continuously. With the
/// word enabled every acquisition is a bare CAS (no head latch); disabled,
/// each acquisition serializes on the head latch. The fast-path hit rate
/// for the grant-word runs is printed afterwards; EXPERIMENTS.md records
/// p50s and hit rates.
fn bench_grant_word_hot_head(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut totals: Vec<usize> = vec![1, cores, 2 * cores, 4 * cores];
    totals.dedup();
    let table = LockId::Table(TableId(1));
    for (name, fast) in [("grant_word", true), ("latched", false)] {
        for &threads in &totals {
            let mut cfg = LockManagerConfig::with_policy(PolicyKind::Baseline);
            cfg.max_agents = cfg.max_agents.max(threads + 8);
            cfg.fastpath = if fast {
                // No sampling: measure the pure CAS path.
                FastPathConfig {
                    sample_every: 0,
                    ..FastPathConfig::default()
                }
            } else {
                FastPathConfig::disabled()
            };
            let m = LockManager::new(cfg);
            let stop = Arc::new(AtomicBool::new(false));
            let mut bg = Vec::new();
            for _ in 0..threads - 1 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                bg.push(std::thread::spawn(move || {
                    let mut agent = m.register_agent().unwrap();
                    let mut ts = TxnLockState::new(agent.slot());
                    while !stop.load(Ordering::Relaxed) {
                        m.begin(&mut ts, &mut agent);
                        m.lock(&mut ts, &mut agent, LockId::Table(TableId(1)), LockMode::IS)
                            .unwrap();
                        m.end_txn(&mut ts, &mut agent, true);
                    }
                    m.retire_agent(&mut agent);
                }));
            }
            let mut agent = m.register_agent().unwrap();
            let mut ts = TxnLockState::new(agent.slot());
            c.bench_function(&format!("lockmgr/hot_head_is_{name}_t{threads}"), |b| {
                b.iter(|| {
                    m.begin(&mut ts, &mut agent);
                    m.lock(&mut ts, &mut agent, table, LockMode::IS).unwrap();
                    m.end_txn(&mut ts, &mut agent, true);
                })
            });
            stop.store(true, Ordering::Relaxed);
            for h in bg {
                h.join().unwrap();
            }
            m.retire_agent(&mut agent);
            if fast {
                let s = m.stats().snapshot();
                if s.fastpath_granted > 0 {
                    println!(
                        "    -> fast-path hit rate t{threads}: {:.4} \
                         ({} granted, {} fallback, {} retry-exhausted)",
                        s.fastpath_hit_rate(),
                        s.fastpath_granted,
                        s.fastpath_fallbacks,
                        s.fastpath_retry_exhausted
                    );
                }
            }
        }
    }
}

/// A raw lock that can be driven by the oversubscribed-contention bench:
/// implemented both by the crate's parking [`parking_lot::RawMutex`] and by
/// a preserved copy of the spin-then-sleep backoff it replaced, so the
/// before/after comparison stays reproducible on any machine.
trait BenchRawLock: Default + Send + Sync + 'static {
    const NAME: &'static str;
    fn lock(&self);
    fn unlock(&self);
}

/// The pre-parking backoff loop, verbatim from the old vendored stand-in:
/// bounded spin, bounded yield, then 50 µs timed sleeps. Kept only as the
/// benchmark baseline — a sleeping waiter can only notice a release when
/// its own timer fires, which is the oversubscription cliff the parking
/// rewrite removes.
#[derive(Default)]
struct SleepBackoffMutex {
    state: std::sync::atomic::AtomicUsize,
}

impl BenchRawLock for SleepBackoffMutex {
    const NAME: &'static str = "sleep_backoff";

    fn lock(&self) {
        use std::sync::atomic::Ordering;
        let mut attempt = 0u32;
        while self
            .state
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            if attempt < 64 {
                std::hint::spin_loop();
            } else if attempt < 128 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            attempt = attempt.wrapping_add(1);
        }
    }

    fn unlock(&self) {
        self.state.store(0, std::sync::atomic::Ordering::Release);
    }
}

struct ParkingMutex {
    raw: parking_lot::RawMutex,
}

impl Default for ParkingMutex {
    fn default() -> Self {
        ParkingMutex {
            raw: <parking_lot::RawMutex as parking_lot::lock_api::RawMutex>::INIT,
        }
    }
}

impl BenchRawLock for ParkingMutex {
    const NAME: &'static str = "parking";

    fn lock(&self) {
        parking_lot::lock_api::RawMutex::lock(&self.raw);
    }

    fn unlock(&self) {
        // SAFETY: the bench pairs every lock with exactly one unlock.
        unsafe { parking_lot::lock_api::RawMutex::unlock(&self.raw) };
    }
}

/// Contended-acquire latency with more threads than cores: 8 background
/// threads each hold the lock for ~20 µs (exceeding any waiter's spin
/// budget) with ~100 µs of think time between holds, while the measured
/// thread hammers the lock. Think time keeps the CPU unsaturated so the
/// measurement isolates *lock handoff* rather than raw scheduler
/// starvation; compare p50s — on oversubscribed hosts the p99 of either
/// variant is scheduler noise. A sleep-backoff waiter can only notice a
/// release when its 50 µs timer happens to fire inside a free window
/// (and under full saturation that mode is metastable, convoying into
/// ms-scale tails); a parked waiter is woken by the release itself. One
/// iteration = one acquire + critical section + release. EXPERIMENTS.md
/// records the numbers.
fn bench_contended_latch(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    fn run_one<L: BenchRawLock>(c: &mut Criterion) {
        let lock = Arc::new(L::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut bg = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            bg.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.lock();
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    lock.unlock();
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            }));
        }
        c.bench_function(
            &format!("latch/contended_oversubscribed_{}", L::NAME),
            |b| {
                b.iter(|| {
                    lock.lock();
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    lock.unlock();
                })
            },
        );
        stop.store(true, Ordering::Relaxed);
        for h in bg {
            h.join().unwrap();
        }
    }
    run_one::<SleepBackoffMutex>(c);
    run_one::<ParkingMutex>(c);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_lock_cycle,
    bench_cache_hit,
    bench_sli_reclaim_vs_fresh,
    bench_reclaim_cas,
    bench_upgrade,
    bench_contended_acquire,
    bench_grant_word_hot_head,
    bench_contended_latch
);
criterion_main!(benches);
