//! A/B microbenchmark of the log front-end: the retired latched design
//! (shared [`LogBuffer`] + a flush mutex every committer blocks on)
//! against the shipping lock-free ring + parked committer queue
//! ([`sli_wal::LogManager`]), at 1x / 2x / 4x the core count of
//! committer threads over a simulated 50 us fsync.
//!
//! Reported per cell: append p50 (the reservation fast path), commit
//! p95 (append commit record + wait for durability), and the mean
//! group-commit size (commits per physical flush). The latched
//! baseline's commit path is the pre-ring `LogManager::commit` logic
//! verbatim: check the watermark, block on the flush mutex, re-check,
//! drain + sleep the device latency. Numbers land in EXPERIMENTS.md.
//!
//! Knobs: `SLI_MICRO_WAL_COMMITS` (commits per thread, default 300),
//! `SLI_MICRO_WAL_FSYNC_US` (simulated device latency, default 50).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::SampleStats;
use parking_lot::Mutex;
use sli_wal::{LogBuffer, LogConfig, LogManager, LogRecord, Lsn};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The pre-ring log manager, reconstructed as a baseline: appends
/// serialize on the buffer latch, and *every* committer that finds the
/// watermark short blocks on the flush mutex — the convoy the ring
/// replaced.
struct LatchedLog {
    buffer: LogBuffer,
    flush: Mutex<()>,
    durable: AtomicU64,
    flushes: AtomicU64,
    commits: AtomicU64,
    latency: Duration,
}

impl LatchedLog {
    fn new(latency: Duration) -> Self {
        LatchedLog {
            buffer: LogBuffer::new(),
            flush: Mutex::new(()),
            durable: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            latency,
        }
    }

    fn append(&self, rec: &LogRecord) -> Lsn {
        self.buffer.append(rec)
    }

    fn commit(&self, lsn: Lsn) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        loop {
            if self.durable.load(Ordering::Acquire) >= lsn {
                return;
            }
            let _g = self.flush.lock();
            if self.durable.load(Ordering::Acquire) >= lsn {
                return;
            }
            let (bytes, upto) = self.buffer.drain();
            if !bytes.is_empty() {
                std::thread::sleep(self.latency); // simulated fsync
            }
            self.flushes.fetch_add(1, Ordering::Relaxed);
            self.durable.store(upto, Ordering::Release);
        }
    }
}

struct Cell {
    append_p50_ns: f64,
    commit_p95_ns: f64,
    commits: u64,
    flushes: u64,
    wall: Duration,
}

fn group(c: &Cell) -> f64 {
    if c.flushes > 0 {
        c.commits as f64 / c.flushes as f64
    } else {
        0.0
    }
}

/// Drive `threads` committers, each appending one update + one commit
/// record then waiting for durability, `commits_per_thread` times.
/// `append`/`commit` abstract over the two designs.
fn drive<L: Send + Sync + 'static>(
    log: Arc<L>,
    threads: usize,
    commits_per_thread: u64,
    append: fn(&L, &LogRecord) -> Lsn,
    commit: fn(&L, Lsn),
    counters: fn(&L) -> (u64, u64),
) -> Cell {
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads as u64 {
        let log = Arc::clone(&log);
        handles.push(std::thread::spawn(move || {
            let mut appends = Vec::with_capacity(commits_per_thread as usize);
            let mut commits = Vec::with_capacity(commits_per_thread as usize);
            let img = [t as u8; 48];
            for i in 0..commits_per_thread {
                let a0 = Instant::now();
                append(&log, &LogRecord::update(t + 1, 1, i as u32, 0, &img, &img));
                appends.push(a0.elapsed());
                let c0 = Instant::now();
                let lsn = append(&log, &LogRecord::commit(t * 1_000_000 + i + 1));
                commit(&log, lsn);
                commits.push(c0.elapsed());
            }
            (appends, commits)
        }));
    }
    let mut appends = Vec::new();
    let mut commits = Vec::new();
    for h in handles {
        let (a, c) = h.join().unwrap();
        appends.extend(a);
        commits.extend(c);
    }
    let wall = started.elapsed();
    let (ncommits, nflushes) = counters(&log);
    Cell {
        append_p50_ns: SampleStats::from_samples(&appends).expect("samples").p50,
        commit_p95_ns: SampleStats::from_samples(&commits).expect("samples").p95,
        commits: ncommits,
        flushes: nflushes,
        wall,
    }
}

fn main() {
    let commits_per_thread = env_u64("SLI_MICRO_WAL_COMMITS", 300);
    let fsync = Duration::from_micros(env_u64("SLI_MICRO_WAL_FSYNC_US", 50));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!(
        "micro_wal: {} commits/thread, {} us simulated fsync, {} cores",
        commits_per_thread,
        fsync.as_micros(),
        cores
    );
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>8} {:>9}",
        "mode", "threads", "append p50", "commit p95", "group", "wall ms"
    );

    for mult in [1usize, 2, 4] {
        let threads = cores * mult;

        let latched = drive(
            Arc::new(LatchedLog::new(fsync)),
            threads,
            commits_per_thread,
            |l, rec| l.append(rec),
            |l, lsn| l.commit(lsn),
            |l| {
                (
                    l.commits.load(Ordering::Relaxed),
                    l.flushes.load(Ordering::Relaxed),
                )
            },
        );

        let ring = drive(
            Arc::new(LogManager::new(LogConfig {
                flush_latency: fsync,
                ..LogConfig::default()
            })),
            threads,
            commits_per_thread,
            |l, rec| l.append(rec.clone()),
            |l, lsn| l.commit(lsn, lsn).expect("no faults armed"),
            |l| {
                let s = l.stats();
                (s.commits, s.flushes)
            },
        );

        for (mode, cell) in [("latched", &latched), ("ring", &ring)] {
            println!(
                "{:<8} {:>8} {:>10.1}us {:>10.1}us {:>8.1} {:>9.1}",
                mode,
                threads,
                cell.append_p50_ns / 1e3,
                cell.commit_p95_ns / 1e3,
                group(cell),
                cell.wall.as_secs_f64() * 1e3
            );
        }
    }
}
