//! Figure-regeneration bench target: running `cargo bench -p sli-bench`
//! reproduces every evaluation figure of the paper at a bench-friendly
//! scale and prints the same series the paper plots.
//!
//! For publication-scale runs use the standalone harness binary
//! (`cargo run --release -p sli-harness -- all`) with larger
//! `SLI_MEASURE_MS` / dataset knobs; this target defaults to reduced
//! datasets and windows so a full `cargo bench` stays in the minutes range.
//! Every default can still be overridden through the same environment
//! variables.

use sli_harness::figures;
use sli_harness::ExperimentScale;

fn default_env(name: &str, value: &str) {
    if std::env::var_os(name).is_none() {
        std::env::set_var(name, value);
    }
}

fn main() {
    // Bench-friendly defaults (override via environment).
    default_env("SLI_TM1_SUBS", "30000");
    default_env("SLI_TPCB_BRANCHES", "32");
    default_env("SLI_TPCB_ACCOUNTS", "500");
    default_env("SLI_TPCC_WAREHOUSES", "8");
    default_env("SLI_TPCC_CUSTOMERS", "200");
    default_env("SLI_TPCC_ITEMS", "2000");
    default_env("SLI_TPCC_ORDERS", "100");
    default_env("SLI_MEASURE_MS", "250");
    default_env("SLI_WARMUP_MS", "100");

    // `cargo bench` passes flags like `--bench`; accept an optional figure
    // filter as the first non-flag argument.
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with('-'));

    let scale = ExperimentScale::from_env();
    eprintln!(
        "figure benches: tm1={} tpcc W={} agents<={} window={}ms (override via SLI_* env)",
        scale.tm1_subscribers,
        scale.tpcc.warehouses,
        scale.max_agents,
        scale.measure.as_millis()
    );

    type FigureFn = fn(&ExperimentScale);
    let all: &[(&str, FigureFn)] = &[
        ("fig1", |s| {
            figures::fig1(s);
        }),
        ("fig5", |s| {
            figures::fig5(s);
        }),
        ("fig6", |s| {
            figures::fig6(s);
        }),
        ("fig7", |s| {
            figures::fig7(s);
        }),
        ("fig8", |s| {
            figures::fig8(s);
        }),
        ("fig9", |s| {
            figures::fig9(s);
        }),
        ("fig10", |s| {
            figures::fig10(s);
        }),
        ("fig11", |s| {
            figures::fig11(s);
        }),
        ("ablation-criteria", |s| {
            figures::ablation_criteria(s);
        }),
        ("bimodal", |s| {
            figures::bimodal(s);
        }),
        ("roving-hotspot", |s| {
            figures::roving_hotspot(s);
        }),
    ];
    for (name, f) in all {
        if filter.as_deref().is_none_or(|flt| name.contains(flt)) {
            let t0 = std::time::Instant::now();
            f(&scale);
            eprintln!("[{name} done in {:.1?}]", t0.elapsed());
        }
    }
}
