//! Sessions and transactions.

use std::cell::RefCell;
use std::sync::Arc;

use bytes::Bytes;
use sli_core::{AgentSliState, LockError, LockId, LockMode, TxnLockState};
use sli_profiler::{Category, Component};
use sli_storage::Rid;
use sli_wal::{LogRecord, Lsn, WalError};

use crate::db::{Database, EngineError, TableHandle};

/// Why a transaction failed. Deadlocks and timeouts are retryable; user
/// aborts model the paper's NDBB-style "failed due to invalid inputs"
/// transactions, which roll back cleanly and count as failures, not errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnError {
    /// Lock acquisition failed (deadlock victim or timeout).
    Lock(LockError),
    /// Application-level validation failure; the transaction rolled back.
    UserAbort(&'static str),
    /// A key or RID was not found.
    NotFound,
    /// The commit-time log force failed (injected fsync failure or a
    /// poisoned device): the transaction was NOT acknowledged. Its
    /// effects may or may not survive a crash — recovery decides.
    Durability(WalError),
}

impl From<LockError> for TxnError {
    fn from(e: LockError) -> Self {
        TxnError::Lock(e)
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Lock(e) => write!(f, "lock error: {e}"),
            TxnError::UserAbort(why) => write!(f, "user abort: {why}"),
            TxnError::NotFound => write!(f, "not found"),
            TxnError::Durability(e) => write!(f, "commit not durable: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl TxnError {
    /// True for failures worth retrying from the top (deadlock/timeout).
    /// Durability failures are not retryable: the log device is gone.
    pub fn is_retryable(&self) -> bool {
        matches!(self, TxnError::Lock(e) if e.is_retryable())
    }
}

struct SessionState {
    agent: AgentSliState,
    ts: TxnLockState,
}

/// A worker thread's connection to the database: owns one lock-manager
/// agent, and with it the SLI inherited-lock list that carries locks from
/// one transaction to the next.
pub struct Session {
    db: Arc<Database>,
    state: RefCell<SessionState>,
}

impl Session {
    pub(crate) fn try_new(db: Arc<Database>) -> Result<Session, EngineError> {
        let agent = db.lockmgr.register_agent().map_err(|e| match e {
            LockError::TooManyAgents { max } => EngineError::TooManyAgents { max },
            other => unreachable!("register_agent returned {other:?}"),
        })?;
        let ts = TxnLockState::new(agent.slot());
        Ok(Session {
            db,
            state: RefCell::new(SessionState { agent, ts }),
        })
    }

    /// Run one transaction. On `Ok` the transaction commits (forcing the
    /// log if it wrote); on `Err` it rolls back (undoing writes, releasing
    /// locks, no inheritance).
    pub fn run<T>(
        &self,
        body: impl FnOnce(&mut Txn<'_>) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        let _app = sli_profiler::enter(Category::Work(Component::Application));
        let state = &mut *self.state.borrow_mut();
        {
            let _t = sli_profiler::enter(Category::Work(Component::TxnManager));
            self.db.lockmgr.begin(&mut state.ts, &mut state.agent);
        }
        let mut txn = Txn {
            db: &self.db,
            ts: &mut state.ts,
            agent: &mut state.agent,
            undo: Vec::new(),
            wrote: false,
            last_lsn: 0,
        };
        match body(&mut txn) {
            Ok(v) => txn.commit().map(|()| v),
            Err(e) => {
                txn.rollback();
                Err(e)
            }
        }
    }

    /// Run a transaction, retrying deadlock/timeout victims up to
    /// `max_retries` times. Non-retryable errors pass through.
    pub fn run_with_retries<T>(
        &self,
        max_retries: usize,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        let mut attempts = 0;
        loop {
            match self.run(&mut body) {
                Err(e) if e.is_retryable() && attempts < max_retries => {
                    attempts += 1;
                }
                other => return other,
            }
        }
    }

    /// The database this session talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Number of locks currently parked on this session's agent by SLI.
    pub fn inherited_locks(&self) -> usize {
        self.state.borrow().agent.inherited_count()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let state = &mut *self.state.borrow_mut();
        self.db.lockmgr.retire_agent(&mut state.agent);
    }
}

enum UndoEntry {
    Update {
        table: TableHandle,
        rid: Rid,
        before: Bytes,
    },
    Insert {
        table: TableHandle,
        rid: Rid,
        key: u64,
        ordered_key: Option<u64>,
    },
    Delete {
        table: TableHandle,
        rid: Rid,
        before: Bytes,
        key: u64,
        ordered_key: Option<u64>,
    },
}

/// A running transaction. All row operations take the appropriate
/// hierarchical locks (record-level S/X with automatic intention locks on
/// page, table, and database) before touching storage.
pub struct Txn<'a> {
    db: &'a Arc<Database>,
    ts: &'a mut TxnLockState,
    agent: &'a mut AgentSliState,
    undo: Vec<UndoEntry>,
    wrote: bool,
    last_lsn: Lsn,
}

impl Txn<'_> {
    fn lock(&mut self, id: LockId, mode: LockMode) -> Result<(), TxnError> {
        self.db.lockmgr.lock(self.ts, self.agent, id, mode)?;
        Ok(())
    }

    fn record_lock(
        &mut self,
        table: TableHandle,
        rid: Rid,
        mode: LockMode,
    ) -> Result<(), TxnError> {
        self.lock(LockId::Record(table.table_id(), rid.page, rid.slot), mode)
    }

    fn log_write(&mut self, rec: LogRecord) {
        if !self.wrote {
            self.wrote = true;
            self.db.log.append(LogRecord::begin(self.ts.txn_seq()));
        }
        self.last_lsn = self.db.log.append(rec);
    }

    /// Synthetic per-row CPU cost (see `DatabaseConfig::row_work_ns`).
    fn row_work(&self) {
        let ns = self.db.row_work_ns;
        if ns == 0 {
            return;
        }
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        let t0 = std::time::Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    /// Transaction sequence number (unique per database).
    pub fn seq(&self) -> u64 {
        self.ts.txn_seq()
    }

    /// Explicitly lock a whole table (e.g. `S` for a stable scan, `X` for
    /// bulk maintenance).
    pub fn lock_table(&mut self, table: TableHandle, mode: LockMode) -> Result<(), TxnError> {
        self.lock(LockId::Table(table.table_id()), mode)
    }

    /// Unlocked index probe: key to RID. The record lock (and the re-read
    /// through [`Txn::read`]) is what makes the access safe.
    pub fn lookup(&mut self, table: TableHandle, key: u64) -> Option<Rid> {
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        self.db.table(table).primary.get(key)
    }

    /// Read a record by RID under an S lock.
    pub fn read(&mut self, table: TableHandle, rid: Rid) -> Result<Bytes, TxnError> {
        self.record_lock(table, rid, LockMode::S)?;
        let t = self.db.table(table);
        self.db.pool.access(table.0, rid.page);
        self.row_work();
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        t.heap.read(rid).ok_or(TxnError::NotFound)
    }

    /// Read a record by primary key under an S lock.
    pub fn read_by_key(&mut self, table: TableHandle, key: u64) -> Result<Bytes, TxnError> {
        let rid = self.lookup(table, key).ok_or(TxnError::NotFound)?;
        self.read(table, rid)
    }

    /// Read a record by RID under an X lock (read-for-update).
    pub fn read_for_update(&mut self, table: TableHandle, rid: Rid) -> Result<Bytes, TxnError> {
        self.record_lock(table, rid, LockMode::X)?;
        let t = self.db.table(table);
        self.db.pool.access(table.0, rid.page);
        self.row_work();
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        t.heap.read(rid).ok_or(TxnError::NotFound)
    }

    /// Overwrite a record by RID under an X lock.
    pub fn update(&mut self, table: TableHandle, rid: Rid, data: &[u8]) -> Result<(), TxnError> {
        self.record_lock(table, rid, LockMode::X)?;
        let t = self.db.table(table);
        self.db.pool.access(table.0, rid.page);
        self.row_work();
        let before = {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            t.heap
                .update(rid, Bytes::copy_from_slice(data))
                .ok_or(TxnError::NotFound)?
        };
        self.log_write(LogRecord::update(
            self.ts.txn_seq(),
            table.0,
            rid.page,
            rid.slot,
            &before,
            data,
        ));
        self.undo.push(UndoEntry::Update { table, rid, before });
        Ok(())
    }

    /// Read-modify-write by primary key under an X lock.
    pub fn update_by_key(
        &mut self,
        table: TableHandle,
        key: u64,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Result<(), TxnError> {
        let rid = self.lookup(table, key).ok_or(TxnError::NotFound)?;
        let before = self.read_for_update(table, rid)?;
        let after = f(&before);
        self.update(table, rid, &after)
    }

    /// Insert a record with a primary key.
    pub fn insert(&mut self, table: TableHandle, key: u64, data: &[u8]) -> Result<Rid, TxnError> {
        self.insert_with_okey(table, key, None, data)
    }

    /// Insert a record with a primary key and an ordered secondary key.
    pub fn insert_with_okey(
        &mut self,
        table: TableHandle,
        key: u64,
        ordered_key: Option<u64>,
        data: &[u8],
    ) -> Result<Rid, TxnError> {
        let t = self.db.table(table);
        let rid = {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            t.heap.insert(Bytes::copy_from_slice(data))
        };
        // Lock the new record exclusively *before* publishing it in the
        // index, so no reader can see it until we commit.
        self.record_lock(table, rid, LockMode::X)?;
        self.db.pool.access(table.0, rid.page);
        self.row_work();
        {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            t.primary.insert(key, rid);
            if let Some(ok) = ordered_key {
                t.ordered.insert(ok, rid);
            }
        }
        self.log_write(LogRecord::insert(
            self.ts.txn_seq(),
            table.0,
            rid.page,
            rid.slot,
            key,
            ordered_key,
            data,
        ));
        self.undo.push(UndoEntry::Insert {
            table,
            rid,
            key,
            ordered_key,
        });
        Ok(rid)
    }

    /// Delete a record by primary key under an X lock.
    pub fn delete_by_key(
        &mut self,
        table: TableHandle,
        key: u64,
        ordered_key: Option<u64>,
    ) -> Result<(), TxnError> {
        let rid = self.lookup(table, key).ok_or(TxnError::NotFound)?;
        self.record_lock(table, rid, LockMode::X)?;
        let t = self.db.table(table);
        self.db.pool.access(table.0, rid.page);
        self.row_work();
        let before = {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            let before = t.heap.delete(rid).ok_or(TxnError::NotFound)?;
            t.primary.remove(key);
            if let Some(ok) = ordered_key {
                t.ordered.remove(ok);
            }
            before
        };
        self.log_write(LogRecord::delete(
            self.ts.txn_seq(),
            table.0,
            rid.page,
            rid.slot,
            key,
            ordered_key,
            &before,
        ));
        self.undo.push(UndoEntry::Delete {
            table,
            rid,
            before,
            key,
            ordered_key,
        });
        Ok(())
    }

    /// Range-scan the ordered secondary index over `[lo, hi]`, S-locking
    /// each visited record, up to `limit` records. Returns the number
    /// visited.
    pub fn scan_ordered(
        &mut self,
        table: TableHandle,
        lo: u64,
        hi: u64,
        limit: usize,
        mut visit: impl FnMut(u64, &[u8]),
    ) -> Result<usize, TxnError> {
        let hits = {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            self.db.table(table).ordered.range(lo, hi, limit)
        };
        let mut n = 0;
        for (key, rid) in hits {
            let data = self.read(table, rid)?;
            visit(key, &data);
            n += 1;
        }
        Ok(n)
    }

    /// Newest ordered-index entry in `[lo, hi]` (unlocked probe).
    pub fn ordered_last(&mut self, table: TableHandle, lo: u64, hi: u64) -> Option<(u64, Rid)> {
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        self.db.table(table).ordered.last_in(lo, hi)
    }

    /// Oldest ordered-index entry in `[lo, hi]` (unlocked probe).
    pub fn ordered_first(&mut self, table: TableHandle, lo: u64, hi: u64) -> Option<(u64, Rid)> {
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        self.db.table(table).ordered.first_in(lo, hi)
    }

    /// Abort with an application-level validation failure (the NDBB "failed
    /// transaction" outcome). Usage: `return Err(txn.user_abort("no such
    /// subscriber"))`.
    pub fn user_abort(&self, why: &'static str) -> TxnError {
        TxnError::UserAbort(why)
    }

    fn commit(self) -> Result<(), TxnError> {
        let _t = sli_profiler::enter(Category::Work(Component::TxnManager));
        if self.wrote {
            let seq = self.ts.txn_seq();
            let lsn = self.db.log.append(LogRecord::commit(seq));
            // Early-release policies drop record-level S locks here — after
            // the commit LSN is assigned, before the commit wait (the
            // session parks on the committer queue until a group-commit
            // flush covers `lsn`). A no-op for every other policy.
            self.db.lockmgr.pre_commit_release(self.ts);
            let forced = self.db.log.commit(seq, lsn);
            // On a flush failure the in-memory effects are kept and the
            // locks released as committed: the Commit record is already in
            // the log stream, so rolling back here could contradict what a
            // torn prefix preserves. The caller simply never gets the ack
            // — recovery decides the transaction's fate from the durable
            // prefix alone.
            self.db.lockmgr.end_txn(self.ts, self.agent, true);
            return forced.map_err(TxnError::Durability);
        }
        self.db.lockmgr.end_txn(self.ts, self.agent, true);
        Ok(())
    }

    fn rollback(mut self) {
        let _t = sli_profiler::enter(Category::Work(Component::TxnManager));
        let seq = self.ts.txn_seq();
        // Undo in reverse order while still holding all X locks. Every
        // undo appends a compensation record (the inverse operation,
        // same txn id) BEFORE the final Abort: if the Abort reaches the
        // durable log, recovery can restore this loser by pure redo; if
        // the crash lands mid-compensation, the undo pass reverses
        // whatever made it out (its operations are tolerant re-inverses).
        for entry in self.undo.drain(..).rev() {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            match entry {
                UndoEntry::Update { table, rid, before } => {
                    let t = self.db.table(table);
                    if let Some(dirty) = t.heap.update(rid, before.clone()) {
                        self.db.log.append(LogRecord::update(
                            seq, table.0, rid.page, rid.slot, &dirty, &before,
                        ));
                    }
                }
                UndoEntry::Insert {
                    table,
                    rid,
                    key,
                    ordered_key,
                } => {
                    let t = self.db.table(table);
                    let gone = t.heap.delete(rid);
                    t.primary.remove(key);
                    if let Some(ok) = ordered_key {
                        t.ordered.remove(ok);
                    }
                    if let Some(data) = gone {
                        self.db.log.append(LogRecord::delete(
                            seq,
                            table.0,
                            rid.page,
                            rid.slot,
                            key,
                            ordered_key,
                            &data,
                        ));
                    }
                }
                UndoEntry::Delete {
                    table,
                    rid,
                    before,
                    key,
                    ordered_key,
                } => {
                    let t = self.db.table(table);
                    t.heap.restore(rid, before.clone());
                    t.primary.insert(key, rid);
                    if let Some(ok) = ordered_key {
                        t.ordered.insert(ok, rid);
                    }
                    self.db.log.append(LogRecord::insert(
                        seq,
                        table.0,
                        rid.page,
                        rid.slot,
                        key,
                        ordered_key,
                        &before,
                    ));
                }
            }
        }
        if self.wrote {
            self.db.log.abort(seq);
        }
        self.db.lockmgr.end_txn(self.ts, self.agent, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DatabaseConfig;

    fn db() -> Arc<Database> {
        Database::open(DatabaseConfig::with_policy(sli_core::PolicyKind::PaperSli).in_memory())
    }

    #[test]
    fn insert_read_update_delete_roundtrip() {
        let db = db();
        let t = db.create_table("t").unwrap();
        let s = db.session();
        s.run(|txn| {
            txn.insert(t, 1, b"one")?;
            assert_eq!(&txn.read_by_key(t, 1)?[..], b"one");
            txn.update_by_key(t, 1, |_| b"ONE".to_vec())?;
            assert_eq!(&txn.read_by_key(t, 1)?[..], b"ONE");
            txn.delete_by_key(t, 1, None)?;
            assert_eq!(txn.read_by_key(t, 1), Err(TxnError::NotFound));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn user_abort_rolls_back_everything() {
        let db = db();
        let t = db.create_table("t").unwrap();
        let s = db.session();
        s.run(|txn| {
            txn.insert(t, 1, b"keep")?;
            Ok(())
        })
        .unwrap();

        let r: Result<(), TxnError> = s.run(|txn| {
            txn.update_by_key(t, 1, |_| b"dirty".to_vec())?;
            txn.insert(t, 2, b"phantom")?;
            txn.delete_by_key(t, 1, None)?;
            Err(txn.user_abort("validation failed"))
        });
        assert_eq!(r, Err(TxnError::UserAbort("validation failed")));
        // All three writes undone.
        assert_eq!(&db.peek(t, 1).unwrap()[..], b"keep");
        assert!(db.peek(t, 2).is_none());
        assert_eq!(db.record_count(t), 1);
    }

    #[test]
    fn commit_forces_the_log() {
        let db = db();
        let t = db.create_table("t").unwrap();
        let s = db.session();
        s.run(|txn| {
            txn.insert(t, 1, b"x")?;
            Ok(())
        })
        .unwrap();
        let stats = db.log_stats();
        assert!(stats.appends >= 2, "begin + insert + commit records");
        assert!(stats.flushes >= 1);
        assert!(db.log.durable_lsn() > 0);
    }

    #[test]
    fn read_only_txns_skip_the_log() {
        let db = db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"x");
        let s = db.session();
        s.run(|txn| {
            txn.read_by_key(t, 1)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.log_stats().appends, 0);
        assert_eq!(db.log_stats().flushes, 0);
    }

    #[test]
    fn scan_ordered_visits_range_in_order() {
        let db = db();
        let t = db.create_table("t").unwrap();
        for k in 0..20u64 {
            db.bulk_insert(t, k, Some(k * 10), &k.to_le_bytes());
        }
        let s = db.session();
        let mut seen = Vec::new();
        s.run(|txn| {
            txn.scan_ordered(t, 50, 120, 100, |k, _| seen.push(k))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![50, 60, 70, 80, 90, 100, 110, 120]);
    }

    #[test]
    fn conflicting_writers_serialize_without_lost_updates() {
        let db = db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, &0u64.to_le_bytes());
        let threads = 8;
        let per = 100;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let s = db.session();
                for _ in 0..per {
                    s.run_with_retries(10, |txn| {
                        txn.update_by_key(t, 1, |old| {
                            let v = u64::from_le_bytes(old.try_into().unwrap());
                            (v + 1).to_le_bytes().to_vec()
                        })
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = u64::from_le_bytes(db.peek(t, 1).unwrap()[..].try_into().unwrap());
        assert_eq!(v, threads * per);
    }

    #[test]
    fn eager_release_policy_threads_through_sessions() {
        use sli_core::PolicyKind;
        let db = Database::open(DatabaseConfig::with_policy(PolicyKind::EagerRelease).in_memory());
        assert_eq!(db.policy_name(), "eager-release");
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"r");
        db.bulk_insert(t, 2, None, &0u64.to_le_bytes());
        let s = db.session();
        // A read-write transaction: the read's S record lock is dropped at
        // commit-LSN, the write's X lock is held through the flush.
        s.run(|txn| {
            txn.read_by_key(t, 1)?;
            txn.update_by_key(t, 2, |_| 1u64.to_le_bytes().to_vec())?;
            Ok(())
        })
        .unwrap();
        let stats = db.lock_stats();
        assert_eq!(stats.early_released, 1);
        assert_eq!(stats.sli_inherited, 0);
        assert_eq!(s.inherited_locks(), 0);
        assert_eq!(&db.peek(t, 2).unwrap()[..], &1u64.to_le_bytes());
    }

    #[test]
    fn sessions_inherit_locks_across_transactions() {
        // Inheritance needs queued acquisitions: grant-word fast path off.
        let mut cfg = DatabaseConfig::with_policy(sli_core::PolicyKind::PaperSli).in_memory();
        cfg.lock.fastpath = sli_core::FastPathConfig::disabled();
        let db = Database::open(cfg);
        let t = db.create_table("t").unwrap();
        for k in 0..100u64 {
            db.bulk_insert(t, k, None, b"v");
        }
        let s = db.session();
        // Heat the high-level locks artificially while they are held (a
        // single-session test can't generate real latch contention); the
        // commit's candidate selection then sees them as hot.
        let db2 = Arc::clone(&db);
        s.run(|txn| {
            txn.read_by_key(t, 2)?;
            for id in [LockId::Database, LockId::Table(t.table_id())] {
                let head = db2.lockmgr.head(id).expect("lock held, head exists");
                for _ in 0..16 {
                    head.hot().record(true);
                }
            }
            Ok(())
        })
        .unwrap();
        assert!(
            s.inherited_locks() >= 2,
            "db and table locks should be inherited, got {}",
            s.inherited_locks()
        );
        let before = db.lock_stats();
        s.run(|txn| {
            txn.read_by_key(t, 3)?;
            Ok(())
        })
        .unwrap();
        let after = db.lock_stats();
        assert!(after.sli_reclaimed > before.sli_reclaimed);
    }
}
