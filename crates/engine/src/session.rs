//! Sessions and transactions.
//!
//! A [`Session`] routes each transaction through the database's
//! configured [`crate::BackendKind`]: the same [`Txn`] API executes
//! under hierarchical two-phase locking (the default) or under the
//! MVCC/optimistic engine from `sli-mvcc`. Workload code is
//! backend-agnostic as long as it retries retryable errors —
//! [`TxnError::Validation`] joins deadlock/timeout victims in that set.

use std::cell::RefCell;
use std::sync::Arc;

use bytes::Bytes;
use sli_core::{AgentSliState, LockError, LockId, LockMode, TxnLockState};
use sli_mvcc::{MvccStore, MvccTxn, ReadEntry, WriteError, WriteKind, WriteOp};
use sli_profiler::{Category, Component};
use sli_storage::Rid;
use sli_wal::{LogRecord, Lsn, WalError};

use crate::db::{Database, EngineError, TableHandle};

/// Why a transaction failed. Deadlocks, timeouts, and validation
/// conflicts are retryable; user aborts model the paper's NDBB-style
/// "failed due to invalid inputs" transactions, which roll back cleanly
/// and count as failures, not errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnError {
    /// Lock acquisition failed (deadlock victim or timeout).
    Lock(LockError),
    /// MVCC backend only: the transaction lost an optimistic conflict —
    /// first-writer-wins on a write-write collision, or commit-time
    /// backward validation found the read set stale. The transaction
    /// rolled back without logging anything; retry from the top.
    Validation(&'static str),
    /// Application-level validation failure; the transaction rolled back.
    UserAbort(&'static str),
    /// A key or RID was not found.
    NotFound,
    /// The commit-time log force failed (injected fsync failure or a
    /// poisoned device): the transaction was NOT acknowledged. Its
    /// effects may or may not survive a crash — recovery decides.
    Durability(WalError),
}

impl From<LockError> for TxnError {
    fn from(e: LockError) -> Self {
        TxnError::Lock(e)
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Lock(e) => write!(f, "lock error: {e}"),
            TxnError::Validation(why) => write!(f, "validation conflict: {why}"),
            TxnError::UserAbort(why) => write!(f, "user abort: {why}"),
            TxnError::NotFound => write!(f, "not found"),
            TxnError::Durability(e) => write!(f, "commit not durable: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl TxnError {
    /// True for failures worth retrying from the top (deadlock/timeout
    /// victims, optimistic validation conflicts). Durability failures
    /// are not retryable: the log device is gone.
    pub fn is_retryable(&self) -> bool {
        match self {
            TxnError::Lock(e) => e.is_retryable(),
            TxnError::Validation(_) => true,
            _ => false,
        }
    }
}

pub(crate) struct SessionState {
    pub(crate) agent: AgentSliState,
    pub(crate) ts: TxnLockState,
    /// MVCC scratch, reused across transactions (empty on the locked
    /// backend).
    pub(crate) mvcc: MvccTxn,
}

/// A worker thread's connection to the database: owns one lock-manager
/// agent (and with it the SLI inherited-lock list that carries locks from
/// one transaction to the next), plus the per-session MVCC scratch when
/// the database runs the `mvcc` backend.
pub struct Session {
    db: Arc<Database>,
    state: RefCell<SessionState>,
}

impl Session {
    pub(crate) fn try_new(db: Arc<Database>) -> Result<Session, EngineError> {
        let agent = db.lockmgr.register_agent().map_err(|e| match e {
            LockError::TooManyAgents { max } => EngineError::TooManyAgents { max },
            other => unreachable!("register_agent returned {other:?}"),
        })?;
        let ts = TxnLockState::new(agent.slot());
        Ok(Session {
            db,
            state: RefCell::new(SessionState {
                agent,
                ts,
                mvcc: MvccTxn::new(),
            }),
        })
    }

    /// Run one transaction. On `Ok` the transaction commits (forcing the
    /// log if it wrote); on `Err` it rolls back (undoing writes, releasing
    /// locks or provisional versions, no inheritance).
    pub fn run<T>(
        &self,
        body: impl FnOnce(&mut Txn<'_>) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        let _app = sli_profiler::enter(Category::Work(Component::Application));
        let state = &mut *self.state.borrow_mut();
        let mut txn = {
            let _t = sli_profiler::enter(Category::Work(Component::TxnManager));
            self.db.backend.begin_txn(&self.db, state)
        };
        match body(&mut txn) {
            Ok(v) => txn.commit().map(|()| v),
            Err(e) => {
                txn.rollback();
                Err(e)
            }
        }
    }

    /// Run a transaction, retrying deadlock/timeout victims and
    /// validation conflicts up to `max_retries` times. Non-retryable
    /// errors pass through.
    pub fn run_with_retries<T>(
        &self,
        max_retries: usize,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        let mut attempts = 0;
        loop {
            match self.run(&mut body) {
                Err(e) if e.is_retryable() && attempts < max_retries => {
                    attempts += 1;
                }
                other => return other,
            }
        }
    }

    /// The database this session talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Number of locks currently parked on this session's agent by SLI.
    pub fn inherited_locks(&self) -> usize {
        self.state.borrow().agent.inherited_count()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let state = &mut *self.state.borrow_mut();
        self.db.lockmgr.retire_agent(&mut state.agent);
    }
}

enum UndoEntry {
    Update {
        table: TableHandle,
        rid: Rid,
        before: Bytes,
    },
    Insert {
        table: TableHandle,
        rid: Rid,
        key: u64,
        ordered_key: Option<u64>,
    },
    Delete {
        table: TableHandle,
        rid: Rid,
        before: Bytes,
        key: u64,
        ordered_key: Option<u64>,
    },
}

/// The locked (2PL) execution state of one transaction.
pub(crate) struct LockedOps<'a> {
    ts: &'a mut TxnLockState,
    agent: &'a mut AgentSliState,
    undo: Vec<UndoEntry>,
    wrote: bool,
    last_lsn: Lsn,
}

impl LockedOps<'_> {
    fn lock(&mut self, db: &Database, id: LockId, mode: LockMode) -> Result<(), TxnError> {
        db.lockmgr.lock(self.ts, self.agent, id, mode)?;
        Ok(())
    }

    fn record_lock(
        &mut self,
        db: &Database,
        table: TableHandle,
        rid: Rid,
        mode: LockMode,
    ) -> Result<(), TxnError> {
        self.lock(
            db,
            LockId::Record(table.table_id(), rid.page, rid.slot),
            mode,
        )
    }

    fn log_write(&mut self, db: &Database, rec: LogRecord) {
        if !self.wrote {
            self.wrote = true;
            db.log.append(LogRecord::begin(self.ts.txn_seq()));
        }
        self.last_lsn = db.log.append(rec);
    }
}

/// The MVCC/optimistic execution state of one transaction.
pub(crate) struct MvccOps<'a> {
    txn: &'a mut MvccTxn,
    store: Arc<MvccStore>,
}

impl MvccOps<'_> {
    /// Snapshot read of `(table, rid)`: own uncommitted write if any,
    /// else the version visible at `read_ts` (entered into the read
    /// set). `Ok(None)` means the record is invisible to this snapshot.
    fn read_rid(
        &mut self,
        db: &Database,
        table: TableHandle,
        rid: Rid,
    ) -> Result<Option<Bytes>, TxnError> {
        if let Some(op) = self.txn.own_write(table.0, rid) {
            // Own provisional; no read-set entry needed — our
            // provisional blocks any other writer from committing a
            // newer version underneath us.
            return Ok(op.after.clone());
        }
        let t = db.table(table);
        // Heap first, chain second: when no chain exists at probe time
        // the heap value IS the base version (chains are created before
        // any commit mutates the heap, and collapse only runs
        // quiesced).
        let heap_base = {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            t.heap.read(rid)
        };
        let obs = self
            .store
            .read(table.0, rid, self.txn.read_ts, self.txn.token(), heap_base);
        self.txn.reads.push(ReadEntry {
            table: table.0,
            rid,
            seen: obs.seen,
        });
        Ok(obs.data)
    }

    /// Install a provisional write (`None` deletes); returns the
    /// snapshot-visible pre-image.
    fn write_rid(
        &mut self,
        db: &Database,
        table: TableHandle,
        rid: Rid,
        data: Option<Bytes>,
    ) -> Result<Option<Bytes>, TxnError> {
        let t = db.table(table);
        let heap_base = {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            t.heap.read(rid)
        };
        self.store
            .write(
                table.0,
                rid,
                self.txn.read_ts,
                self.txn.token(),
                data,
                heap_base,
            )
            .map_err(|e| match e {
                WriteError::Conflict(why) => TxnError::Validation(why),
                WriteError::NotFound => TxnError::NotFound,
            })
    }
}

pub(crate) enum TxnOps<'a> {
    Locked(LockedOps<'a>),
    Mvcc(MvccOps<'a>),
}

impl<'a> TxnOps<'a> {
    pub(crate) fn locked(ts: &'a mut TxnLockState, agent: &'a mut AgentSliState) -> TxnOps<'a> {
        TxnOps::Locked(LockedOps {
            ts,
            agent,
            undo: Vec::new(),
            wrote: false,
            last_lsn: 0,
        })
    }

    pub(crate) fn mvcc(txn: &'a mut MvccTxn, store: Arc<MvccStore>) -> TxnOps<'a> {
        TxnOps::Mvcc(MvccOps { txn, store })
    }
}

/// Synthetic per-row CPU cost (see `DatabaseConfig::row_work_ns`).
fn row_work(db: &Database) {
    let ns = db.row_work_ns;
    if ns == 0 {
        return;
    }
    let _s = sli_profiler::enter(Category::Work(Component::Storage));
    let t0 = std::time::Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// A running transaction. Under the locked backend, row operations take
/// hierarchical locks (record-level S/X with automatic intention locks
/// on page, table, and database) before touching storage. Under the
/// MVCC backend, reads resolve a snapshot-visible version into the read
/// set, writes install provisional versions, and commit validates the
/// read set before publishing — no lock-manager traffic at all.
pub struct Txn<'a> {
    db: &'a Arc<Database>,
    ops: TxnOps<'a>,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(db: &'a Arc<Database>, ops: TxnOps<'a>) -> Txn<'a> {
        Txn { db, ops }
    }

    /// Transaction sequence number. Locked backend: unique per
    /// database. MVCC: the snapshot timestamp (the commit timestamp —
    /// which becomes the WAL transaction id — is only allocated at
    /// commit).
    pub fn seq(&self) -> u64 {
        match &self.ops {
            TxnOps::Locked(l) => l.ts.txn_seq(),
            TxnOps::Mvcc(m) => m.txn.read_ts,
        }
    }

    /// Explicitly lock a whole table (e.g. `S` for a stable scan, `X` for
    /// bulk maintenance). No-op on the MVCC backend: scans read a
    /// consistent snapshot without locks.
    pub fn lock_table(&mut self, table: TableHandle, mode: LockMode) -> Result<(), TxnError> {
        let db = self.db;
        match &mut self.ops {
            TxnOps::Locked(l) => l.lock(db, LockId::Table(table.table_id()), mode),
            TxnOps::Mvcc(_) => Ok(()),
        }
    }

    /// Index probe: key to RID. Locked backend: unlocked — the record
    /// lock (and the re-read through [`Txn::read`]) makes the access
    /// safe. MVCC: consults the transaction's own insert/delete overlay
    /// before the shared index.
    pub fn lookup(&mut self, table: TableHandle, key: u64) -> Option<Rid> {
        if let TxnOps::Mvcc(m) = &self.ops {
            if let Some(&overlay) = m.txn.key_overlay.get(&(table.0, key)) {
                return overlay;
            }
        }
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        self.db.table(table).primary.get(key)
    }

    /// Read a record by RID (S lock / snapshot-visible version).
    pub fn read(&mut self, table: TableHandle, rid: Rid) -> Result<Bytes, TxnError> {
        let db = self.db;
        match &mut self.ops {
            TxnOps::Locked(l) => {
                l.record_lock(db, table, rid, LockMode::S)?;
                let t = db.table(table);
                db.pool.access(table.0, rid.page);
                row_work(db);
                let _s = sli_profiler::enter(Category::Work(Component::Storage));
                t.heap.read(rid).ok_or(TxnError::NotFound)
            }
            TxnOps::Mvcc(m) => {
                db.pool.access(table.0, rid.page);
                row_work(db);
                m.read_rid(db, table, rid)?.ok_or(TxnError::NotFound)
            }
        }
    }

    /// Read a record by primary key.
    pub fn read_by_key(&mut self, table: TableHandle, key: u64) -> Result<Bytes, TxnError> {
        let rid = self.lookup(table, key).ok_or(TxnError::NotFound)?;
        self.read(table, rid)
    }

    /// Read a record by RID for a later update. Locked backend: takes
    /// the X lock up front. MVCC: identical to [`Txn::read`] — the
    /// conflict surfaces at the write or at commit-time validation.
    pub fn read_for_update(&mut self, table: TableHandle, rid: Rid) -> Result<Bytes, TxnError> {
        let db = self.db;
        match &mut self.ops {
            TxnOps::Locked(l) => {
                l.record_lock(db, table, rid, LockMode::X)?;
                let t = db.table(table);
                db.pool.access(table.0, rid.page);
                row_work(db);
                let _s = sli_profiler::enter(Category::Work(Component::Storage));
                t.heap.read(rid).ok_or(TxnError::NotFound)
            }
            TxnOps::Mvcc(_) => self.read(table, rid),
        }
    }

    /// Overwrite a record by RID (X lock / provisional version).
    pub fn update(&mut self, table: TableHandle, rid: Rid, data: &[u8]) -> Result<(), TxnError> {
        let db = self.db;
        match &mut self.ops {
            TxnOps::Locked(l) => {
                l.record_lock(db, table, rid, LockMode::X)?;
                let t = db.table(table);
                db.pool.access(table.0, rid.page);
                row_work(db);
                let before = {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    t.heap
                        .update(rid, Bytes::copy_from_slice(data))
                        .ok_or(TxnError::NotFound)?
                };
                l.log_write(
                    db,
                    LogRecord::update(l.ts.txn_seq(), table.0, rid.page, rid.slot, &before, data),
                );
                l.undo.push(UndoEntry::Update { table, rid, before });
                Ok(())
            }
            TxnOps::Mvcc(m) => {
                if matches!(m.txn.own_write(table.0, rid), Some(op) if op.after.is_none()) {
                    return Err(TxnError::NotFound); // updating own delete
                }
                db.pool.access(table.0, rid.page);
                row_work(db);
                let after = Bytes::copy_from_slice(data);
                let before = m.write_rid(db, table, rid, Some(after.clone()))?;
                m.txn.push_write(WriteOp {
                    table: table.0,
                    rid,
                    kind: WriteKind::Update,
                    before,
                    after: Some(after),
                });
                Ok(())
            }
        }
    }

    /// Read-modify-write by primary key.
    pub fn update_by_key(
        &mut self,
        table: TableHandle,
        key: u64,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Result<(), TxnError> {
        let rid = self.lookup(table, key).ok_or(TxnError::NotFound)?;
        let before = self.read_for_update(table, rid)?;
        let after = f(&before);
        self.update(table, rid, &after)
    }

    /// Insert a record with a primary key.
    pub fn insert(&mut self, table: TableHandle, key: u64, data: &[u8]) -> Result<Rid, TxnError> {
        self.insert_with_okey(table, key, None, data)
    }

    /// Insert a record with a primary key and an ordered secondary key.
    /// MVCC: the heap row is allocated now, but the index entries are
    /// published only at commit — the record stays invisible to every
    /// other transaction until then.
    pub fn insert_with_okey(
        &mut self,
        table: TableHandle,
        key: u64,
        ordered_key: Option<u64>,
        data: &[u8],
    ) -> Result<Rid, TxnError> {
        let db = self.db;
        match &mut self.ops {
            TxnOps::Locked(l) => {
                let t = db.table(table);
                let rid = {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    t.heap.insert(Bytes::copy_from_slice(data))
                };
                // Lock the new record exclusively *before* publishing it
                // in the index, so no reader can see it until we commit.
                l.record_lock(db, table, rid, LockMode::X)?;
                db.pool.access(table.0, rid.page);
                row_work(db);
                {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    t.primary.insert(key, rid);
                    if let Some(ok) = ordered_key {
                        t.ordered.insert(ok, rid);
                    }
                }
                l.log_write(
                    db,
                    LogRecord::insert(
                        l.ts.txn_seq(),
                        table.0,
                        rid.page,
                        rid.slot,
                        key,
                        ordered_key,
                        data,
                    ),
                );
                l.undo.push(UndoEntry::Insert {
                    table,
                    rid,
                    key,
                    ordered_key,
                });
                Ok(rid)
            }
            TxnOps::Mvcc(m) => {
                let t = db.table(table);
                let bytes = Bytes::copy_from_slice(data);
                let rid = {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    t.heap.insert(bytes.clone())
                };
                db.pool.access(table.0, rid.page);
                row_work(db);
                m.store
                    .insert_provisional(table.0, rid, m.txn.token(), bytes.clone());
                m.txn.push_write(WriteOp {
                    table: table.0,
                    rid,
                    kind: WriteKind::Insert {
                        key,
                        okey: ordered_key,
                    },
                    before: None,
                    after: Some(bytes),
                });
                m.txn.key_overlay.insert((table.0, key), Some(rid));
                Ok(rid)
            }
        }
    }

    /// Delete a record by primary key. MVCC: installs a provisional
    /// tombstone; the index entries are removed at commit and the heap
    /// row is reclaimed later by GC chain collapse (`Database::quiesce`).
    pub fn delete_by_key(
        &mut self,
        table: TableHandle,
        key: u64,
        ordered_key: Option<u64>,
    ) -> Result<(), TxnError> {
        let rid = self.lookup(table, key).ok_or(TxnError::NotFound)?;
        let db = self.db;
        match &mut self.ops {
            TxnOps::Locked(l) => {
                l.record_lock(db, table, rid, LockMode::X)?;
                let t = db.table(table);
                db.pool.access(table.0, rid.page);
                row_work(db);
                let before = {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    let before = t.heap.delete(rid).ok_or(TxnError::NotFound)?;
                    t.primary.remove(key);
                    if let Some(ok) = ordered_key {
                        t.ordered.remove(ok);
                    }
                    before
                };
                l.log_write(
                    db,
                    LogRecord::delete(
                        l.ts.txn_seq(),
                        table.0,
                        rid.page,
                        rid.slot,
                        key,
                        ordered_key,
                        &before,
                    ),
                );
                l.undo.push(UndoEntry::Delete {
                    table,
                    rid,
                    before,
                    key,
                    ordered_key,
                });
                Ok(())
            }
            TxnOps::Mvcc(m) => {
                db.pool.access(table.0, rid.page);
                row_work(db);
                let before = m.write_rid(db, table, rid, None)?;
                m.txn.push_write(WriteOp {
                    table: table.0,
                    rid,
                    kind: WriteKind::Delete {
                        key,
                        okey: ordered_key,
                    },
                    before,
                    after: None,
                });
                m.txn.key_overlay.insert((table.0, key), None);
                Ok(())
            }
        }
    }

    /// Range-scan the ordered secondary index over `[lo, hi]`, up to
    /// `limit` records; returns the number visited. Locked backend:
    /// S-locks each visited record. MVCC: reads each record's
    /// snapshot-visible version without any locks, silently skipping
    /// records invisible to the snapshot (committed after it, or
    /// tombstoned before it). Own uncommitted inserts are not yet in
    /// the shared index and are not visited.
    pub fn scan_ordered(
        &mut self,
        table: TableHandle,
        lo: u64,
        hi: u64,
        limit: usize,
        mut visit: impl FnMut(u64, &[u8]),
    ) -> Result<usize, TxnError> {
        let hits = {
            let _s = sli_profiler::enter(Category::Work(Component::Storage));
            self.db.table(table).ordered.range(lo, hi, limit)
        };
        let db = self.db;
        let mut n = 0;
        for (key, rid) in hits {
            match &mut self.ops {
                TxnOps::Locked(_) => {
                    let data = self.read(table, rid)?;
                    visit(key, &data);
                    n += 1;
                }
                TxnOps::Mvcc(m) => {
                    db.pool.access(table.0, rid.page);
                    row_work(db);
                    if let Some(data) = m.read_rid(db, table, rid)? {
                        visit(key, &data);
                        n += 1;
                    }
                }
            }
        }
        Ok(n)
    }

    /// Newest ordered-index entry in `[lo, hi]` (unlocked probe).
    pub fn ordered_last(&mut self, table: TableHandle, lo: u64, hi: u64) -> Option<(u64, Rid)> {
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        self.db.table(table).ordered.last_in(lo, hi)
    }

    /// Oldest ordered-index entry in `[lo, hi]` (unlocked probe).
    pub fn ordered_first(&mut self, table: TableHandle, lo: u64, hi: u64) -> Option<(u64, Rid)> {
        let _s = sli_profiler::enter(Category::Work(Component::Storage));
        self.db.table(table).ordered.first_in(lo, hi)
    }

    /// Abort with an application-level validation failure (the NDBB "failed
    /// transaction" outcome). Usage: `return Err(txn.user_abort("no such
    /// subscriber"))`.
    pub fn user_abort(&self, why: &'static str) -> TxnError {
        TxnError::UserAbort(why)
    }

    fn commit(self) -> Result<(), TxnError> {
        let _t = sli_profiler::enter(Category::Work(Component::TxnManager));
        let db = self.db;
        match self.ops {
            TxnOps::Locked(l) => {
                if l.wrote {
                    let seq = l.ts.txn_seq();
                    let lsn = db.log.append(LogRecord::commit(seq));
                    // Early-release policies drop record-level S locks here
                    // — after the commit LSN is assigned, before the commit
                    // wait (the session parks on the committer queue until a
                    // group-commit flush covers `lsn`). A no-op for every
                    // other policy.
                    db.lockmgr.pre_commit_release(l.ts);
                    let forced = db.log.commit(seq, lsn);
                    // On a flush failure the in-memory effects are kept and
                    // the locks released as committed: the Commit record is
                    // already in the log stream, so rolling back here could
                    // contradict what a torn prefix preserves. The caller
                    // simply never gets the ack — recovery decides the
                    // transaction's fate from the durable prefix alone.
                    db.lockmgr.end_txn(l.ts, l.agent, true);
                    return forced.map_err(TxnError::Durability);
                }
                db.lockmgr.end_txn(l.ts, l.agent, true);
                Ok(())
            }
            TxnOps::Mvcc(m) => {
                let slot = m.txn.slot;
                let token = m.txn.token();
                if m.txn.writes.is_empty() {
                    // Read-only: the snapshot is trivially serializable at
                    // read_ts — no validation, no logging, no flush wait.
                    m.store.note_ro_commit();
                    m.store.end(slot);
                    return Ok(());
                }
                // Allocate the commit timestamp (which doubles as the WAL
                // transaction id) and enter the preparing state: readers at
                // or above `commit_ts` now wait for our outcome instead of
                // resolving an inconsistent cut.
                let commit_ts = m.store.prepare_commit(slot);
                if let Err(why) = m.store.validate(&m.txn.reads, token) {
                    // Backward validation failed: discard every provisional
                    // version and reclaim heap rows of own inserts (never
                    // published in an index). Nothing was logged.
                    m.store.discard(m.txn.written_rids(), token);
                    for (tid, rid) in m.txn.inserted_rids() {
                        if let Some(t) = db.table_by_id(tid) {
                            t.heap.delete(rid);
                        }
                    }
                    m.store.finish_commit(slot);
                    m.store.end(slot);
                    m.store.note_validation_abort();
                    return Err(TxnError::Validation(why));
                }
                // WAL first: Begin + one record per write op + Commit, all
                // under the commit timestamp. Same group-commit pipeline as
                // the locked backend.
                db.log.append(LogRecord::begin(commit_ts));
                for op in &m.txn.writes {
                    let rec = match op.kind {
                        WriteKind::Insert { key, okey } => LogRecord::insert(
                            commit_ts,
                            op.table,
                            op.rid.page,
                            op.rid.slot,
                            key,
                            okey,
                            op.after.as_ref().expect("insert has an after image"),
                        ),
                        WriteKind::Update => LogRecord::update(
                            commit_ts,
                            op.table,
                            op.rid.page,
                            op.rid.slot,
                            op.before.as_ref().expect("update has a before image"),
                            op.after.as_ref().expect("update has an after image"),
                        ),
                        WriteKind::Delete { key, okey } => LogRecord::delete(
                            commit_ts,
                            op.table,
                            op.rid.page,
                            op.rid.slot,
                            key,
                            okey,
                            op.before.as_ref().expect("delete has a before image"),
                        ),
                    };
                    db.log.append(rec);
                }
                let lsn = db.log.append(LogRecord::commit(commit_ts));
                // Flip the provisional versions to committed at commit_ts,
                // then apply the heap/index effects in execution order.
                // Readers keep resolving through the chains (the heap value
                // only matters where no chain exists), so the order within
                // this block is not visible to them.
                m.store.install(m.txn.written_rids(), token, commit_ts);
                {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    for op in &m.txn.writes {
                        let Some(t) = db.table_by_id(op.table) else {
                            continue;
                        };
                        match op.kind {
                            WriteKind::Insert { key, okey } => {
                                t.primary.insert(key, op.rid);
                                if let Some(ok) = okey {
                                    t.ordered.insert(ok, op.rid);
                                }
                            }
                            WriteKind::Update => {
                                t.heap.update(
                                    op.rid,
                                    op.after.clone().expect("update has an after image"),
                                );
                            }
                            WriteKind::Delete { key, okey } => {
                                t.primary.remove(key);
                                if let Some(ok) = okey {
                                    t.ordered.remove(ok);
                                }
                                // The heap row stays allocated until GC
                                // collapses the tombstone chain: freeing it
                                // now could let a concurrent insert reuse
                                // the RID while chains still reference it.
                            }
                        }
                    }
                }
                m.store.finish_commit(slot);
                m.store.end(slot);
                m.store.maybe_gc();
                // Park on the committer queue until a group-commit flush
                // covers our commit record — identical ack contract to the
                // locked backend.
                db.log.commit(commit_ts, lsn).map_err(TxnError::Durability)
            }
        }
    }

    fn rollback(self) {
        let _t = sli_profiler::enter(Category::Work(Component::TxnManager));
        let db = self.db;
        match self.ops {
            TxnOps::Locked(mut l) => {
                let seq = l.ts.txn_seq();
                // Undo in reverse order while still holding all X locks.
                // Every undo appends a compensation record (the inverse
                // operation, same txn id) BEFORE the final Abort: if the
                // Abort reaches the durable log, recovery can restore this
                // loser by pure redo; if the crash lands mid-compensation,
                // the undo pass reverses whatever made it out (its
                // operations are tolerant re-inverses).
                for entry in l.undo.drain(..).rev() {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    match entry {
                        UndoEntry::Update { table, rid, before } => {
                            let t = db.table(table);
                            if let Some(dirty) = t.heap.update(rid, before.clone()) {
                                db.log.append(LogRecord::update(
                                    seq, table.0, rid.page, rid.slot, &dirty, &before,
                                ));
                            }
                        }
                        UndoEntry::Insert {
                            table,
                            rid,
                            key,
                            ordered_key,
                        } => {
                            let t = db.table(table);
                            let gone = t.heap.delete(rid);
                            t.primary.remove(key);
                            if let Some(ok) = ordered_key {
                                t.ordered.remove(ok);
                            }
                            if let Some(data) = gone {
                                db.log.append(LogRecord::delete(
                                    seq,
                                    table.0,
                                    rid.page,
                                    rid.slot,
                                    key,
                                    ordered_key,
                                    &data,
                                ));
                            }
                        }
                        UndoEntry::Delete {
                            table,
                            rid,
                            before,
                            key,
                            ordered_key,
                        } => {
                            let t = db.table(table);
                            t.heap.restore(rid, before.clone());
                            t.primary.insert(key, rid);
                            if let Some(ok) = ordered_key {
                                t.ordered.insert(ok, rid);
                            }
                            db.log.append(LogRecord::insert(
                                seq,
                                table.0,
                                rid.page,
                                rid.slot,
                                key,
                                ordered_key,
                                &before,
                            ));
                        }
                    }
                }
                if l.wrote {
                    db.log.abort(seq);
                }
                db.lockmgr.end_txn(l.ts, l.agent, false);
            }
            TxnOps::Mvcc(m) => {
                // Nothing was logged and nothing published: drop the
                // provisional versions and reclaim the heap rows of own
                // inserts (never visible to anyone else).
                let token = m.txn.token();
                m.store.discard(m.txn.written_rids(), token);
                {
                    let _s = sli_profiler::enter(Category::Work(Component::Storage));
                    for (tid, rid) in m.txn.inserted_rids() {
                        if let Some(t) = db.table_by_id(tid) {
                            t.heap.delete(rid);
                        }
                    }
                }
                m.store.end(m.txn.slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::db::DatabaseConfig;

    fn db() -> Arc<Database> {
        Database::open(DatabaseConfig::with_policy(sli_core::PolicyKind::PaperSli).in_memory())
    }

    fn mvcc_db() -> Arc<Database> {
        Database::open(
            DatabaseConfig::default()
                .backend(BackendKind::Mvcc)
                .in_memory(),
        )
    }

    #[test]
    fn insert_read_update_delete_roundtrip() {
        for db in [db(), mvcc_db()] {
            let t = db.create_table("t").unwrap();
            let s = db.session();
            s.run(|txn| {
                txn.insert(t, 1, b"one")?;
                assert_eq!(&txn.read_by_key(t, 1)?[..], b"one");
                txn.update_by_key(t, 1, |_| b"ONE".to_vec())?;
                assert_eq!(&txn.read_by_key(t, 1)?[..], b"ONE");
                txn.delete_by_key(t, 1, None)?;
                assert_eq!(txn.read_by_key(t, 1), Err(TxnError::NotFound));
                Ok(())
            })
            .unwrap();
        }
    }

    #[test]
    fn user_abort_rolls_back_everything() {
        for db in [db(), mvcc_db()] {
            let t = db.create_table("t").unwrap();
            let s = db.session();
            s.run(|txn| {
                txn.insert(t, 1, b"keep")?;
                Ok(())
            })
            .unwrap();

            let r: Result<(), TxnError> = s.run(|txn| {
                txn.update_by_key(t, 1, |_| b"dirty".to_vec())?;
                txn.insert(t, 2, b"phantom")?;
                txn.delete_by_key(t, 1, None)?;
                Err(txn.user_abort("validation failed"))
            });
            assert_eq!(r, Err(TxnError::UserAbort("validation failed")));
            // All three writes undone.
            db.quiesce();
            assert_eq!(&db.peek(t, 1).unwrap()[..], b"keep");
            assert!(db.peek(t, 2).is_none());
            assert_eq!(db.record_count(t), 1);
        }
    }

    #[test]
    fn commit_forces_the_log() {
        for db in [db(), mvcc_db()] {
            let t = db.create_table("t").unwrap();
            let s = db.session();
            s.run(|txn| {
                txn.insert(t, 1, b"x")?;
                Ok(())
            })
            .unwrap();
            let stats = db.log_stats();
            assert!(stats.appends >= 2, "begin + insert + commit records");
            assert!(stats.flushes >= 1);
            assert!(db.log.durable_lsn() > 0);
        }
    }

    #[test]
    fn read_only_txns_skip_the_log() {
        for db in [db(), mvcc_db()] {
            let t = db.create_table("t").unwrap();
            db.bulk_insert(t, 1, None, b"x");
            let s = db.session();
            s.run(|txn| {
                txn.read_by_key(t, 1)?;
                Ok(())
            })
            .unwrap();
            assert_eq!(db.log_stats().appends, 0);
            assert_eq!(db.log_stats().flushes, 0);
        }
    }

    #[test]
    fn scan_ordered_visits_range_in_order() {
        for db in [db(), mvcc_db()] {
            let t = db.create_table("t").unwrap();
            for k in 0..20u64 {
                db.bulk_insert(t, k, Some(k * 10), &k.to_le_bytes());
            }
            let s = db.session();
            let mut seen = Vec::new();
            s.run(|txn| {
                txn.scan_ordered(t, 50, 120, 100, |k, _| seen.push(k))?;
                Ok(())
            })
            .unwrap();
            assert_eq!(seen, vec![50, 60, 70, 80, 90, 100, 110, 120]);
            seen.clear();
        }
    }

    #[test]
    fn conflicting_writers_serialize_without_lost_updates() {
        for db in [db(), mvcc_db()] {
            let t = db.create_table("t").unwrap();
            db.bulk_insert(t, 1, None, &0u64.to_le_bytes());
            let threads = 8;
            let per = 100;
            let mut handles = Vec::new();
            for _ in 0..threads {
                let db = Arc::clone(&db);
                handles.push(std::thread::spawn(move || {
                    let s = db.session();
                    for _ in 0..per {
                        s.run_with_retries(10_000, |txn| {
                            txn.update_by_key(t, 1, |old| {
                                let v = u64::from_le_bytes(old.try_into().unwrap());
                                (v + 1).to_le_bytes().to_vec()
                            })
                        })
                        .unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let v = u64::from_le_bytes(db.peek(t, 1).unwrap()[..].try_into().unwrap());
            assert_eq!(v, threads * per);
        }
    }

    #[test]
    fn eager_release_policy_threads_through_sessions() {
        use sli_core::PolicyKind;
        let db = Database::open(DatabaseConfig::with_policy(PolicyKind::EagerRelease).in_memory());
        assert_eq!(db.policy_name(), "eager-release");
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"r");
        db.bulk_insert(t, 2, None, &0u64.to_le_bytes());
        let s = db.session();
        // A read-write transaction: the read's S record lock is dropped at
        // commit-LSN, the write's X lock is held through the flush.
        s.run(|txn| {
            txn.read_by_key(t, 1)?;
            txn.update_by_key(t, 2, |_| 1u64.to_le_bytes().to_vec())?;
            Ok(())
        })
        .unwrap();
        let stats = db.lock_stats();
        assert_eq!(stats.early_released, 1);
        assert_eq!(stats.sli_inherited, 0);
        assert_eq!(s.inherited_locks(), 0);
        assert_eq!(&db.peek(t, 2).unwrap()[..], &1u64.to_le_bytes());
    }

    #[test]
    fn sessions_inherit_locks_across_transactions() {
        // Inheritance needs queued acquisitions: grant-word fast path off.
        let mut cfg = DatabaseConfig::with_policy(sli_core::PolicyKind::PaperSli).in_memory();
        cfg.lock.fastpath = sli_core::FastPathConfig::disabled();
        let db = Database::open(cfg);
        let t = db.create_table("t").unwrap();
        for k in 0..100u64 {
            db.bulk_insert(t, k, None, b"v");
        }
        let s = db.session();
        // Heat the high-level locks artificially while they are held (a
        // single-session test can't generate real latch contention); the
        // commit's candidate selection then sees them as hot.
        let db2 = Arc::clone(&db);
        s.run(|txn| {
            txn.read_by_key(t, 2)?;
            for id in [LockId::Database, LockId::Table(t.table_id())] {
                let head = db2.lockmgr.head(id).expect("lock held, head exists");
                for _ in 0..16 {
                    head.hot().record(true);
                }
            }
            Ok(())
        })
        .unwrap();
        assert!(
            s.inherited_locks() >= 2,
            "db and table locks should be inherited, got {}",
            s.inherited_locks()
        );
        let before = db.lock_stats();
        s.run(|txn| {
            txn.read_by_key(t, 3)?;
            Ok(())
        })
        .unwrap();
        let after = db.lock_stats();
        assert!(after.sli_reclaimed > before.sli_reclaimed);
    }

    #[test]
    fn mvcc_snapshot_reads_ignore_later_commits() {
        let db = mvcc_db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"old");
        let reader = db.session();
        let writer = db.session();
        // Interleave: the reader's snapshot is taken, then a writer
        // commits, then the reader re-reads — and must still see "old".
        let inner: Result<(), TxnError> = reader.run(|txn| {
            assert_eq!(&txn.read_by_key(t, 1)?[..], b"old");
            writer.run(|w| {
                w.update_by_key(t, 1, |_| b"new".to_vec())?;
                Ok(())
            })?;
            assert_eq!(
                &txn.read_by_key(t, 1)?[..],
                b"old",
                "snapshot must not see the later commit"
            );
            Ok(())
        });
        inner.unwrap();
        // A fresh snapshot sees the new value.
        reader
            .run(|txn| {
                assert_eq!(&txn.read_by_key(t, 1)?[..], b"new");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn mvcc_stale_read_write_fails_validation() {
        let db = mvcc_db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, &0u64.to_le_bytes());
        db.bulk_insert(t, 2, None, &0u64.to_le_bytes());
        let a = db.session();
        let b = db.session();
        // a reads record 1 then writes record 2; b updates record 1 and
        // commits in between. a's backward validation must fail.
        let r: Result<(), TxnError> = a.run(|txn| {
            txn.read_by_key(t, 1)?;
            b.run(|w| {
                w.update_by_key(t, 1, |_| 7u64.to_le_bytes().to_vec())?;
                Ok(())
            })?;
            txn.update_by_key(t, 2, |_| 9u64.to_le_bytes().to_vec())?;
            Ok(())
        });
        assert!(
            matches!(r, Err(TxnError::Validation(_))),
            "expected a validation abort, got {r:?}"
        );
        assert!(r.unwrap_err().is_retryable());
        // The failed writer's provisional on record 2 is gone.
        assert_eq!(&db.peek(t, 2).unwrap()[..], &0u64.to_le_bytes());
        let stats = db.mvcc_stats().unwrap();
        assert!(stats.validation_aborts >= 1);
    }

    #[test]
    fn mvcc_never_touches_the_lock_manager() {
        let db = mvcc_db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"x");
        let s = db.session();
        s.run(|txn| {
            txn.lock_table(t, LockMode::S)?;
            txn.read_by_key(t, 1)?;
            txn.update_by_key(t, 1, |_| b"y".to_vec())?;
            Ok(())
        })
        .unwrap();
        let stats = db.lock_stats();
        assert_eq!(stats.lock_requests, 0, "no lock-manager traffic on mvcc");
        assert_eq!(stats.fastpath_granted, 0);
    }
}
