//! The concurrency-backend seam.
//!
//! A [`Database`] routes every transaction through one
//! [`ConcurrencyBackend`]: the default [`LockedBackend`] is the paper's
//! hierarchical lock manager (with SLI), [`MvccBackend`] is the
//! multiversion/optimistic engine from `sli-mvcc` (ROADMAP item 4). The
//! backend decides what a [`crate::Txn`]'s operations do; the `Txn` API
//! itself — and the WAL group-commit pipeline underneath commit — is
//! shared.

use std::sync::Arc;

use sli_mvcc::{MvccConfig, MvccStore};

use crate::db::Database;
use crate::session::{SessionState, Txn, TxnOps};

/// Which concurrency-control engine a database runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Hierarchical two-phase locking through the lock manager (the
    /// paper's engine; SLI and all lock policies apply). The default.
    #[default]
    Locked2pl,
    /// Multiversion storage with optimistic validate-at-commit
    /// execution (`sli-mvcc`). The lock manager is never consulted on
    /// this path.
    Mvcc,
}

impl BackendKind {
    /// Parse a knob value (`SLI_BACKEND`): `locked`/`2pl`/`locked2pl`
    /// or `mvcc`/`occ`.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "locked" | "2pl" | "locked2pl" | "locked-2pl" => Some(BackendKind::Locked2pl),
            "mvcc" | "occ" => Some(BackendKind::Mvcc),
            _ => None,
        }
    }

    /// Display name (`locked-2pl` / `mvcc`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Locked2pl => "locked-2pl",
            BackendKind::Mvcc => "mvcc",
        }
    }
}

/// What a concurrency backend must provide. One per database; the
/// per-transaction state lives in [`SessionState`] and the returned
/// [`Txn`].
pub(crate) trait ConcurrencyBackend: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Start a transaction on a session: register it with the backend
    /// and build the `Txn` that routes operations to this backend.
    fn begin_txn<'a>(&self, db: &'a Arc<Database>, state: &'a mut SessionState) -> Txn<'a>;

    /// Settle background state while no transaction is running (MVCC:
    /// run a full GC pass so version chains collapse back into the
    /// heap). Used before whole-database comparisons like
    /// `state_hash`.
    fn quiesce(&self, _db: &Database) {}

    /// Recovery finished replaying a log whose transaction ids reach
    /// below `next_txn`: advance any id/timestamp allocator past them.
    fn on_recovered(&self, _next_txn: u64) {}

    /// The MVCC store, when this backend has one.
    fn mvcc_store(&self) -> Option<&Arc<MvccStore>> {
        None
    }
}

/// The lock-manager backend (default).
pub(crate) struct LockedBackend;

impl ConcurrencyBackend for LockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Locked2pl
    }

    fn begin_txn<'a>(&self, db: &'a Arc<Database>, state: &'a mut SessionState) -> Txn<'a> {
        let SessionState { agent, ts, .. } = state;
        db.lockmgr.begin(ts, agent);
        Txn::new(db, TxnOps::locked(ts, agent))
    }
}

/// The multiversion/optimistic backend.
pub(crate) struct MvccBackend {
    pub(crate) store: Arc<MvccStore>,
}

impl MvccBackend {
    pub(crate) fn new(max_agents: usize, config: MvccConfig) -> MvccBackend {
        MvccBackend {
            store: Arc::new(MvccStore::new(max_agents, config)),
        }
    }
}

impl ConcurrencyBackend for MvccBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mvcc
    }

    fn begin_txn<'a>(&self, db: &'a Arc<Database>, state: &'a mut SessionState) -> Txn<'a> {
        let slot = state.agent.slot();
        let read_ts = self.store.begin(slot);
        state.mvcc.reset(read_ts, slot);
        Txn::new(db, TxnOps::mvcc(&mut state.mvcc, Arc::clone(&self.store)))
    }

    fn quiesce(&self, db: &Database) {
        // A full pass with no snapshot active collapses every chain;
        // tombstoned chains release their (deferred) heap rows here.
        self.store.gc(|table, rid| {
            if let Some(t) = db.table_by_id(table) {
                t.heap.delete(rid);
            }
        });
    }

    fn on_recovered(&self, next_txn: u64) {
        // Commit timestamps double as WAL transaction ids: keep new
        // ones above everything the replayed log used.
        self.store.advance_ts_floor(next_txn);
    }

    fn mvcc_store(&self) -> Option<&Arc<MvccStore>> {
        Some(&self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_knob_spellings() {
        assert_eq!(BackendKind::parse("mvcc"), Some(BackendKind::Mvcc));
        assert_eq!(BackendKind::parse("OCC"), Some(BackendKind::Mvcc));
        assert_eq!(BackendKind::parse("locked"), Some(BackendKind::Locked2pl));
        assert_eq!(BackendKind::parse("2pl"), Some(BackendKind::Locked2pl));
        assert_eq!(BackendKind::parse("nope"), None);
        assert_eq!(BackendKind::default(), BackendKind::Locked2pl);
        assert_eq!(BackendKind::Mvcc.name(), "mvcc");
    }
}
