//! Database-level crash recovery.
//!
//! [`Database::recover`] rebuilds a database from a log device's bytes
//! (as returned by [`Database::durable_log`] after a simulated crash):
//! the WAL tier's analysis/redo/undo pipeline (`sli_wal::recovery`)
//! replays the valid prefix into fresh heap pages and indexes, the
//! compensation records it emits for active losers are appended to the
//! recovered log, and a checkpoint seals it — so recovering the
//! recovered log again is pure redo and changes nothing.
//!
//! Everything here mutates pages *outside* any transaction: no locks are
//! taken and no new log records describe the mutations themselves (the
//! log being replayed already does). Each such mutation carries a
//! `// durability:` comment stating why it is safe.

use std::sync::Arc;

use bytes::Bytes;
use sli_storage::Rid;
use sli_wal::{
    analyze, replay, FaultPlan, LogManager, LogRecord, RecoveryError, RecoveryReport,
    RecoveryStorage,
};

use crate::db::{Database, DatabaseConfig};

/// Replay target over the engine's tables. Recovery runs single-threaded
/// before any session exists, so the shared-reference storage calls
/// (heap/index internals latch per page or shard) are uncontended.
struct EngineStorage<'a> {
    db: &'a Database,
}

impl RecoveryStorage for EngineStorage<'_> {
    fn create_table(&mut self, table: u32, name: &str) -> Result<(), RecoveryError> {
        // durability: catalog replay — ids are assigned in log order, so
        // the handle must come out equal to what the Create record says.
        let got = match self.db.create_table_inner(name, false) {
            Ok(handle) => handle.0,
            Err(_) => u32::MAX, // duplicate name: catalog diverged from the log
        };
        if got != table {
            return Err(RecoveryError::TableIdMismatch {
                expected: table,
                got,
            });
        }
        Ok(())
    }

    fn put(
        &mut self,
        table: u32,
        page: u32,
        slot: u16,
        key: u64,
        okey: Option<u64>,
        data: &Bytes,
    ) -> Result<(), RecoveryError> {
        let t = self
            .db
            .table_by_id(table)
            .ok_or(RecoveryError::UnknownTable { table })?;
        let rid = Rid::new(page, slot);
        // durability: redo of an Insert (or undo of a Delete) places the
        // record at the exact RID the log recorded; the page must exist
        // first, and overwriting an occupied slot keeps redo idempotent.
        t.heap.ensure_page(page);
        t.heap.restore(rid, data.clone());
        // durability: index entries are not logged separately — they are
        // derived here from the record's logged keys.
        t.primary.insert(key, rid);
        if let Some(ok) = okey {
            t.ordered.insert(ok, rid);
        }
        Ok(())
    }

    fn overwrite(
        &mut self,
        table: u32,
        page: u32,
        slot: u16,
        data: &Bytes,
    ) -> Result<(), RecoveryError> {
        let t = self
            .db
            .table_by_id(table)
            .ok_or(RecoveryError::UnknownTable { table })?;
        // durability: redo (or undo) of an Update rewrites bytes in
        // place; a missing record is a structural error because every
        // Update's target was durably inserted earlier in the log.
        t.heap
            .update(Rid::new(page, slot), data.clone())
            .map(|_| ())
            .ok_or(RecoveryError::MissingRecord { table, page, slot })
    }

    fn remove(
        &mut self,
        table: u32,
        page: u32,
        slot: u16,
        key: u64,
        okey: Option<u64>,
    ) -> Result<(), RecoveryError> {
        let t = self
            .db
            .table_by_id(table)
            .ok_or(RecoveryError::UnknownTable { table })?;
        // durability: redo of a Delete (or undo of an Insert); absence is
        // tolerated so replaying a partial compensation tail stays a
        // no-op.
        t.heap.delete(Rid::new(page, slot));
        t.primary.remove(key);
        if let Some(ok) = okey {
            t.ordered.remove(ok);
        }
        Ok(())
    }
}

impl Database {
    /// Rebuild a database from a crashed log device.
    ///
    /// `log` is the device's surviving bytes — typically
    /// [`Database::durable_log`] of the crashed instance, possibly
    /// truncated or torn. The valid checksummed prefix is replayed
    /// (redo everything, undo active losers), compensation records and a
    /// checkpoint are appended and forced, and the transaction-id floor
    /// is advanced past every id the log used. The returned database is
    /// durable (retains its log) regardless of `config.log.retain`, and
    /// any fault plan in `config` is cleared.
    pub fn recover(
        config: DatabaseConfig,
        log: &[u8],
    ) -> Result<(Arc<Database>, RecoveryReport), RecoveryError> {
        let analysis = analyze(log);
        let mut config = config;
        config.log.retain = true;
        config.log.fault = FaultPlan::none();
        // Seed the new log manager with the *valid* prefix only: a torn
        // or corrupt tail is dropped here, exactly like an ARIES restart
        // truncating at the last whole record. New appends continue the
        // LSN sequence after the prefix.
        let log_mgr =
            LogManager::with_device(config.log.clone(), log[..analysis.consumed].to_vec());
        let db = Database::open_with_log(config, log_mgr);

        let mut clrs: Vec<LogRecord> = Vec::new();
        let report = {
            let mut storage = EngineStorage { db: &db };
            replay(&analysis, &mut storage, |rec| clrs.push(rec.clone()))?
        };
        // Append the undo pass's compensations (inverse records + one
        // Abort per active loser), then seal with a checkpoint carrying
        // the next fresh transaction id. After the force, this log is a
        // fixpoint: recovering it again is pure redo.
        for rec in clrs {
            db.log.append(rec);
        }
        let next_txn = analysis.max_txn + 1;
        db.log.append(LogRecord::checkpoint(next_txn));
        db.log.force()?;
        db.lockmgr.advance_txn_floor(next_txn);
        // The configured backend recovers too: a database reopened as MVCC
        // must allocate commit timestamps (= WAL txn ids) above everything
        // the replayed log used, no matter which backend wrote it.
        db.backend.on_recovered(next_txn);
        Ok((db, report))
    }

    /// Order-insensitive digest of all user-visible state: catalog names,
    /// heap contents at their exact RIDs, and both indexes. Two databases
    /// with identical logical state hash equal regardless of internal
    /// iteration order. Verification paths only (latches everything,
    /// table by table).
    pub fn state_hash(&self) -> u64 {
        fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for (id, name) in self.table_names().iter().enumerate() {
            let t = self
                .table_by_id(id as u32)
                .expect("table_names ids are dense");
            acc = fnv(acc, name.as_bytes());
            // Heap scan visits pages and slots in order: fold sequentially.
            t.heap.scan(|rid, data| {
                acc = fnv(acc, &rid.page.to_le_bytes());
                acc = fnv(acc, &rid.slot.to_le_bytes());
                acc = fnv(acc, data);
            });
            // Hash-index iteration order is unspecified: combine entries
            // with a commutative fold so shard layout can't leak in.
            let mut unordered = 0u64;
            t.primary.for_each(|key, rid| {
                let mut e = fnv(0x9747_b28c_u64, &key.to_le_bytes());
                e = fnv(e, &rid.page.to_le_bytes());
                e = fnv(e, &rid.slot.to_le_bytes());
                unordered = unordered.wrapping_add(e);
            });
            acc = fnv(acc, &unordered.to_le_bytes());
            // Ordered index visits in key order: fold sequentially.
            t.ordered.for_each(|key, rid| {
                acc = fnv(acc, &key.to_le_bytes());
                acc = fnv(acc, &rid.page.to_le_bytes());
                acc = fnv(acc, &rid.slot.to_le_bytes());
            });
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxnError;
    use sli_wal::{DecodeEnd, WalError};

    fn durable_db() -> Arc<Database> {
        Database::open(DatabaseConfig::default().in_memory().durable())
    }

    #[test]
    fn rebuilds_committed_state_from_the_log() {
        let db = durable_db();
        let t = db.create_table("t").unwrap();
        for k in 0..10u64 {
            db.bulk_insert(t, k, Some(k * 2), &k.to_le_bytes());
        }
        let s = db.session();
        s.run(|txn| {
            txn.update_by_key(t, 3, |_| b"updated".to_vec())?;
            txn.delete_by_key(t, 7, Some(14))?;
            txn.insert_with_okey(t, 100, Some(200), b"new")?;
            Ok(())
        })
        .unwrap();
        let before = db.state_hash();

        let (rec, report) =
            Database::recover(DatabaseConfig::default().in_memory(), &db.durable_log())
                .expect("clean log recovers");
        assert_eq!(report.winners, 1);
        assert_eq!(report.undone, 0);
        assert_eq!(report.tables_created, 1);
        assert_eq!(report.end, DecodeEnd::Clean);
        assert_eq!(rec.state_hash(), before, "recovered state matches");
        assert_eq!(
            &rec.peek(rec.table_handle("t").unwrap(), 3).unwrap()[..],
            b"updated"
        );
        assert!(rec.peek(rec.table_handle("t").unwrap(), 7).is_none());
    }

    #[test]
    fn active_losers_are_undone_and_recovery_is_a_fixpoint() {
        let db = durable_db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"base");
        db.force_log().unwrap();
        // Hand-append an unterminated transaction: a winner's view of the
        // crash catching txn 42 mid-flight after its records were flushed.
        use sli_wal::LogRecord;
        db.log.append(LogRecord::begin(42));
        db.log
            .append(LogRecord::update(42, t.0, 0, 0, b"base", b"dirty"));
        db.log
            .append(LogRecord::insert(42, t.0, 0, 1, 99, None, b"phantom"));
        db.force_log().unwrap();

        let (rec, report) =
            Database::recover(DatabaseConfig::default().in_memory(), &db.durable_log()).unwrap();
        assert_eq!(report.undone, 1);
        assert_eq!(report.undo_applied, 2);
        let rt = rec.table_handle("t").unwrap();
        assert_eq!(
            &rec.peek(rt, 1).unwrap()[..],
            b"base",
            "loser update undone"
        );
        assert!(rec.peek(rt, 99).is_none(), "loser insert removed");

        // Fixpoint: recovering the recovered log is pure redo.
        let log2 = rec.durable_log();
        let hash1 = rec.state_hash();
        let (rec2, report2) =
            Database::recover(DatabaseConfig::default().in_memory(), &log2).unwrap();
        assert_eq!(report2.undone, 0);
        assert_eq!(report2.end, DecodeEnd::Clean);
        assert_eq!(rec2.state_hash(), hash1, "second recovery changes nothing");
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let db = durable_db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"kept");
        db.force_log().unwrap();
        let mut log = db.durable_log();
        let whole = log.len();
        // Append half a record's worth of garbage-free truncation: encode
        // a real record, then tear it.
        use bytes::BytesMut;
        use sli_wal::LogRecord;
        let mut extra = BytesMut::new();
        LogRecord::insert(sli_wal::LOADER_TXN, t.0, 0, 1, 2, None, b"torn-away").encode(&mut extra);
        log.extend_from_slice(&extra[..extra.len() - 3]);

        let (rec, report) = Database::recover(DatabaseConfig::default().in_memory(), &log).unwrap();
        assert_eq!(report.consumed, whole);
        assert_eq!(report.end, DecodeEnd::Torn { missing: 3 });
        let rt = rec.table_handle("t").unwrap();
        assert!(rec.peek(rt, 1).is_some());
        assert!(rec.peek(rt, 2).is_none(), "torn record never replays");
        // The recovered log is clean: the tear was dropped at open.
        assert_eq!(
            sli_wal::LogRecord::decode_all(&rec.durable_log()).end,
            DecodeEnd::Clean
        );
    }

    #[test]
    fn checksum_corruption_stops_replay_at_the_damage() {
        let db = durable_db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"first");
        let mark = db.force_log().unwrap() as usize;
        db.bulk_insert(t, 2, None, b"second");
        db.force_log().unwrap();
        let mut log = db.durable_log();
        // Flip one bit inside the second batch.
        log[mark + 10] ^= 0x40;
        let (rec, report) = Database::recover(DatabaseConfig::default().in_memory(), &log).unwrap();
        assert_eq!(report.end, DecodeEnd::Corrupt);
        assert_eq!(report.consumed, mark);
        let rt = rec.table_handle("t").unwrap();
        assert!(rec.peek(rt, 1).is_some());
        assert!(rec.peek(rt, 2).is_none(), "corrupt record never replays");
    }

    #[test]
    fn unacked_commit_after_failed_flush_is_decided_by_the_log() {
        // A commit whose flush failed was never acknowledged; whether it
        // survives depends only on what reached the device — here the
        // batch was dropped entirely, so recovery must undo or omit it.
        let mut cfg = DatabaseConfig::default().in_memory().durable();
        cfg.log.fault = FaultPlan::fail_nth(2, 1_000_000);
        let db = Database::open(cfg);
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"base");
        db.force_log().unwrap(); // flush #1: base data is durable
        let s = db.session();
        let err = s
            .run(|txn| {
                txn.update_by_key(t, 1, |_| b"dirty".to_vec())?;
                Ok(())
            })
            .expect_err("flush #2 is rigged to fail");
        assert!(matches!(
            err,
            TxnError::Durability(WalError::FlushFailed { .. })
        ));

        let (rec, report) =
            Database::recover(DatabaseConfig::default().in_memory(), &db.durable_log()).unwrap();
        // The whole batch (Begin/Update/Commit) was dropped: nothing of
        // the unacked transaction exists, base data is intact.
        assert_eq!(report.winners, 0);
        let rt = rec.table_handle("t").unwrap();
        assert_eq!(&rec.peek(rt, 1).unwrap()[..], b"base");
    }

    #[test]
    fn recovered_database_accepts_new_transactions_with_fresh_ids() {
        let db = durable_db();
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 1, None, b"v");
        let s = db.session();
        s.run(|txn| {
            txn.update_by_key(t, 1, |_| b"v2".to_vec())?;
            Ok(())
        })
        .unwrap();
        let (rec, report) =
            Database::recover(DatabaseConfig::default().in_memory(), &db.durable_log()).unwrap();
        // New work on the recovered database, then recover *that* log:
        // the new transaction's id must not collide with a replayed one.
        let rt = rec.table_handle("t").unwrap();
        let s2 = rec.session();
        s2.run(|txn| {
            txn.update_by_key(rt, 1, |_| b"v3".to_vec())?;
            Ok(())
        })
        .unwrap();
        let (rec2, report2) =
            Database::recover(DatabaseConfig::default().in_memory(), &rec.durable_log()).unwrap();
        assert!(report2.max_txn > report.max_txn, "txn floor advanced");
        assert_eq!(
            &rec2.peek(rec2.table_handle("t").unwrap(), 1).unwrap()[..],
            b"v3"
        );
    }
}
