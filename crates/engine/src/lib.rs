//! # sli-engine — the database engine facade
//!
//! Ties the substrates together into a usable engine: a [`Database`] owns
//! the lock manager (with SLI), the WAL, the buffer-pool simulator, and the
//! heap tables with their indexes. Worker threads open a [`Session`] each
//! (one lock-manager *agent*) and run transactions as closures:
//!
//! ```
//! use sli_engine::{Database, DatabaseConfig};
//!
//! let db = Database::open(DatabaseConfig::default());
//! let t = db.create_table("accounts").unwrap();
//! let session = db.session();
//! session.run(|txn| {
//!     txn.insert(t, 42, b"hello")?;
//!     let v = txn.read_by_key(t, 42)?;
//!     assert_eq!(&v[..], b"hello");
//!     Ok(())
//! }).unwrap();
//! ```
//!
//! Transactions are hard-coded against this API exactly like the paper's
//! setup: "the database metadata and back-end processing are schema-agnostic
//! and general purpose, but the transaction code is schema-aware",
//! equivalent to statically compiled stored procedures.

#![warn(missing_docs)]

mod backend;
mod db;
mod recovery;
mod session;

pub use backend::BackendKind;
pub use db::{Database, DatabaseConfig, EngineError, TableHandle};
pub use session::{Session, Txn, TxnError};

// Re-exports so workloads and the harness can name substrate types without
// depending on every crate directly.
pub use bytes::Bytes;
pub use sli_core::{
    AdaptivePolicy, LockId, LockLevel, LockManagerConfig, LockMode, LockPolicy, LockStatsSnapshot,
    PolicyKind, PolicyMap, ScopeStatsSnapshot, SliConfig, TableId,
};
pub use sli_mvcc::{MvccConfig, MvccStats};
pub use sli_storage::{BufferPoolConfig, BufferPoolStats, Rid};
pub use sli_wal::{
    DecodeEnd, FaultPlan, LogConfig, LogStats, RecoveryError, RecoveryReport, WalError,
};
