//! The database: catalog, tables, and shared services.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use sli_core::{
    LockManager, LockManagerConfig, LockPolicy, LockStatsSnapshot, PolicyKind, TableId,
};
use sli_storage::{
    BufferPool, BufferPoolConfig, BufferPoolStats, HashIndex, HeapTable, OrderedIndex, Rid,
};
use sli_wal::{LogConfig, LogManager, LogStats};

use crate::session::Session;

/// Engine-level errors (catalog misuse; transaction errors are
/// [`crate::TxnError`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A table with this name already exists.
    DuplicateTable(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateTable(name) => write!(f, "table {name:?} already exists"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Configuration for a [`Database`].
#[derive(Clone, Debug, Default)]
pub struct DatabaseConfig {
    /// Lock manager + SLI settings.
    pub lock: LockManagerConfig,
    /// WAL settings.
    pub log: LogConfig,
    /// Buffer-pool residency simulation.
    pub pool: BufferPoolConfig,
    /// Synthetic per-row-access CPU cost in nanoseconds, charged to the
    /// storage component. Stands in for the heavier per-row path of the
    /// original engine (B-tree descent, slot directory, page pin/unpin)
    /// that this reproduction's flat heap tables don't pay, and calibrates
    /// the baseline lock-manager share into the paper's 10-25 % band
    /// (see EXPERIMENTS.md "calibration").
    pub row_work_ns: u64,
}

impl DatabaseConfig {
    /// Engine with the given inheritance policy (a [`PolicyKind`] or a
    /// custom `Arc<dyn LockPolicy>`), everything else default.
    pub fn with_policy(policy: impl Into<Arc<dyn LockPolicy>>) -> Self {
        DatabaseConfig {
            lock: LockManagerConfig::with_policy(policy),
            ..Default::default()
        }
    }

    /// Baseline engine: no inheritance, everything else default.
    pub fn baseline() -> Self {
        DatabaseConfig::with_policy(PolicyKind::Baseline)
    }

    /// Engine with SLI enabled (the paper's policy, default settings).
    pub fn with_sli() -> Self {
        DatabaseConfig::with_policy(PolicyKind::PaperSli)
    }

    /// In-memory setup: no I/O penalties anywhere (the paper's NDBB
    /// configuration).
    pub fn in_memory(mut self) -> Self {
        self.pool = BufferPoolConfig::all_in_memory();
        self.log = LogConfig::default();
        self
    }
}

/// One table's storage: heap plus primary hash index plus ordered secondary
/// index.
pub(crate) struct TableData {
    pub(crate) name: String,
    pub(crate) heap: HeapTable,
    pub(crate) primary: HashIndex,
    pub(crate) ordered: OrderedIndex,
}

/// Opaque, copyable reference to a table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TableHandle(pub(crate) u32);

impl TableHandle {
    /// The lock-hierarchy id of this table.
    pub fn table_id(self) -> TableId {
        TableId(self.0)
    }
}

/// A database instance.
pub struct Database {
    pub(crate) lockmgr: Arc<LockManager>,
    pub(crate) log: Arc<LogManager>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) row_work_ns: u64,
    catalog: RwLock<HashMap<String, TableHandle>>,
    tables: RwLock<Vec<Arc<TableData>>>,
}

impl Database {
    /// Open a fresh database.
    pub fn open(config: DatabaseConfig) -> Arc<Database> {
        Arc::new(Database {
            lockmgr: LockManager::new(config.lock),
            log: Arc::new(LogManager::new(config.log)),
            pool: Arc::new(BufferPool::new(config.pool)),
            row_work_ns: config.row_work_ns,
            catalog: RwLock::new(HashMap::new()),
            tables: RwLock::new(Vec::new()),
        })
    }

    /// Create a table; fails if the name is taken.
    pub fn create_table(&self, name: &str) -> Result<TableHandle, EngineError> {
        let mut catalog = self.catalog.write();
        if catalog.contains_key(name) {
            return Err(EngineError::DuplicateTable(name.to_string()));
        }
        let mut tables = self.tables.write();
        let handle = TableHandle(tables.len() as u32);
        tables.push(Arc::new(TableData {
            name: name.to_string(),
            heap: HeapTable::new(),
            primary: HashIndex::new(),
            ordered: OrderedIndex::new(),
        }));
        catalog.insert(name.to_string(), handle);
        Ok(handle)
    }

    /// Look up a table by name.
    pub fn table_handle(&self, name: &str) -> Option<TableHandle> {
        self.catalog.read().get(name).copied()
    }

    /// Names of all tables, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().iter().map(|t| t.name.clone()).collect()
    }

    pub(crate) fn table(&self, h: TableHandle) -> Arc<TableData> {
        Arc::clone(&self.tables.read()[h.0 as usize])
    }

    /// Open a session (allocates a lock-manager agent). One per worker
    /// thread.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    /// Non-transactional bulk load: insert directly into heap and indexes,
    /// bypassing locks and WAL. For dataset loaders only.
    pub fn bulk_insert(
        &self,
        table: TableHandle,
        key: u64,
        ordered_key: Option<u64>,
        data: &[u8],
    ) -> Rid {
        let t = self.table(table);
        let rid = t.heap.insert(Bytes::copy_from_slice(data));
        t.primary.insert(key, rid);
        if let Some(ok) = ordered_key {
            t.ordered.insert(ok, rid);
        }
        self.pool.prewarm(table.0, rid.page);
        rid
    }

    /// Direct read bypassing locks (verification/debug only).
    pub fn peek(&self, table: TableHandle, key: u64) -> Option<Bytes> {
        let t = self.table(table);
        let rid = t.primary.get(key)?;
        t.heap.read(rid)
    }

    /// Number of live records in a table.
    pub fn record_count(&self, table: TableHandle) -> u64 {
        self.table(table).heap.record_count() as u64
    }

    /// The lock manager (for stats and advanced use).
    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.lockmgr
    }

    /// Display name of the active inheritance policy.
    pub fn policy_name(&self) -> &'static str {
        self.lockmgr.policy().name()
    }

    /// Lock-manager counter snapshot.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.lockmgr.stats().snapshot()
    }

    /// WAL counter snapshot.
    pub fn log_stats(&self) -> LogStats {
        self.log.stats()
    }

    /// Buffer-pool counter snapshot.
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.read().len())
            .field("lockmgr", &self.lockmgr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_create_and_lookup() {
        let db = Database::open(DatabaseConfig::default());
        let t1 = db.create_table("a").unwrap();
        let t2 = db.create_table("b").unwrap();
        assert_ne!(t1, t2);
        assert_eq!(db.table_handle("a"), Some(t1));
        assert_eq!(db.table_handle("c"), None);
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(
            db.create_table("a"),
            Err(EngineError::DuplicateTable("a".into()))
        );
    }

    #[test]
    fn bulk_insert_and_peek() {
        let db = Database::open(DatabaseConfig::default());
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 7, None, b"payload");
        assert_eq!(&db.peek(t, 7).unwrap()[..], b"payload");
        assert_eq!(db.record_count(t), 1);
        assert!(db.peek(t, 8).is_none());
    }
}
