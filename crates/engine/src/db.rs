//! The database: catalog, tables, and shared services.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use sli_core::{
    AdaptivePolicy, LockLevel, LockManager, LockManagerConfig, LockPolicy, LockStatsSnapshot,
    ScopeStatsSnapshot, TableId,
};
use sli_mvcc::{MvccConfig, MvccStats};
use sli_storage::{
    BufferPool, BufferPoolConfig, BufferPoolStats, HashIndex, HeapTable, OrderedIndex, Rid,
};
use sli_wal::{LogConfig, LogManager, LogRecord, LogStats, Lsn, WalError, LOADER_TXN};

use crate::backend::{BackendKind, ConcurrencyBackend, LockedBackend, MvccBackend};
use crate::session::Session;

/// Engine-level errors (catalog misuse, capacity; transaction errors are
/// [`crate::TxnError`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Opening another session would exceed
    /// `LockManagerConfig::max_agents`.
    TooManyAgents {
        /// The configured agent capacity.
        max: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateTable(name) => write!(f, "table {name:?} already exists"),
            EngineError::TooManyAgents { max } => write!(
                f,
                "agent capacity exceeded ({max}); raise LockManagerConfig::max_agents"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Configuration for a [`Database`], built fluently.
///
/// The concurrency-control strategy is a scoped policy map: a default
/// [`LockPolicy`] plus optional per-table and per-level overrides,
/// resolved once per lock head at creation (see `sli_core::PolicyMap`).
///
/// ```
/// use sli_engine::{DatabaseConfig, LockLevel, PolicyKind};
///
/// let cfg = DatabaseConfig::default()
///     .default_policy(PolicyKind::Baseline)
///     .table_policy("WAREHOUSE", PolicyKind::AggressiveSli)
///     .level_policy(LockLevel::Record, PolicyKind::Baseline)
///     .in_memory();
/// ```
///
/// (The pre-map `baseline()`/`with_sli()` shims were removed — use
/// `with_policy(PolicyKind::Baseline)` / `with_policy(PolicyKind::PaperSli)`
/// or the builder above; see the README migration table.)
#[derive(Clone, Debug, Default)]
pub struct DatabaseConfig {
    /// Lock manager + SLI settings (including the policy map).
    pub lock: LockManagerConfig,
    /// WAL settings.
    pub log: LogConfig,
    /// Buffer-pool residency simulation.
    pub pool: BufferPoolConfig,
    /// Synthetic per-row-access CPU cost in nanoseconds, charged to the
    /// storage component. Stands in for the heavier per-row path of the
    /// original engine (B-tree descent, slot directory, page pin/unpin)
    /// that this reproduction's flat heap tables don't pay, and calibrates
    /// the baseline lock-manager share into the paper's 10-25 % band
    /// (see EXPERIMENTS.md "calibration").
    pub row_work_ns: u64,
    /// Which concurrency-control engine to run transactions on
    /// (default: the hierarchical lock manager).
    pub backend: BackendKind,
    /// MVCC store tuning (only used when `backend` is
    /// [`BackendKind::Mvcc`]).
    pub mvcc: MvccConfig,
}

impl DatabaseConfig {
    /// Engine with the given default-scope inheritance policy (a
    /// [`sli_core::PolicyKind`] or a custom `Arc<dyn LockPolicy>`),
    /// everything else default.
    pub fn with_policy(policy: impl Into<Arc<dyn LockPolicy>>) -> Self {
        DatabaseConfig {
            lock: LockManagerConfig::with_policy(policy),
            ..Default::default()
        }
    }

    /// Builder: replace the default scope's policy.
    pub fn default_policy(mut self, policy: impl Into<Arc<dyn LockPolicy>>) -> Self {
        self.lock.policies.set_default(policy);
        self
    }

    /// Builder: add a per-table policy override. `table` is the name the
    /// table will be created under; the override binds to the concrete
    /// [`TableId`] when [`Database::create_table`] runs and governs the
    /// table's whole subtree (table, page, and record locks).
    pub fn table_policy(mut self, table: &str, policy: impl Into<Arc<dyn LockPolicy>>) -> Self {
        self.lock.policies.add_table_override(table, policy);
        self
    }

    /// Builder: add a per-level policy override (applies wherever no table
    /// override claims the head). Criterion-5 caveat: an *inheriting*
    /// override below `Table` level only fires where its table ancestry
    /// also inherits (see `sli_core::PolicyMap::add_level_override`).
    pub fn level_policy(
        mut self,
        level: LockLevel,
        policy: impl Into<Arc<dyn LockPolicy>>,
    ) -> Self {
        self.lock.policies.add_level_override(level, policy);
        self
    }

    /// Builder: make the default scope adaptive — per-head switching
    /// between baseline and SLI when the observed collision/sharing rate
    /// crosses the `[demote, promote]` hysteresis band (see
    /// [`AdaptivePolicy`]).
    pub fn adaptive(self, promote: f64, demote: f64) -> Self {
        let policy: Arc<dyn LockPolicy> = Arc::new(AdaptivePolicy::with_band(promote, demote));
        self.default_policy(policy)
    }

    /// In-memory setup: no I/O penalties anywhere (the paper's NDBB
    /// configuration). Resets the log config — call [`Self::durable`]
    /// *after* this when combining the two.
    pub fn in_memory(mut self) -> Self {
        self.pool = BufferPoolConfig::all_in_memory();
        self.log = LogConfig::default();
        self
    }

    /// Builder: select the concurrency backend (see [`BackendKind`]).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Builder: retain the log's durable bytes in a simulated device so
    /// the database can be recovered from them (see
    /// [`Database::recover`]). Off by default — retention copies every
    /// flushed batch, which perf experiments don't want to pay.
    pub fn durable(mut self) -> Self {
        self.log.retain = true;
        self
    }
}

/// One table's storage: heap plus primary hash index plus ordered secondary
/// index.
pub(crate) struct TableData {
    pub(crate) name: String,
    pub(crate) heap: HeapTable,
    pub(crate) primary: HashIndex,
    pub(crate) ordered: OrderedIndex,
}

/// Opaque, copyable reference to a table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TableHandle(pub(crate) u32);

impl TableHandle {
    /// The lock-hierarchy id of this table.
    pub fn table_id(self) -> TableId {
        TableId(self.0)
    }
}

/// A database instance.
pub struct Database {
    pub(crate) lockmgr: Arc<LockManager>,
    pub(crate) log: Arc<LogManager>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) row_work_ns: u64,
    pub(crate) backend: Box<dyn ConcurrencyBackend>,
    catalog: RwLock<HashMap<String, TableHandle>>,
    tables: RwLock<Vec<Arc<TableData>>>,
}

impl Database {
    /// Open a fresh database.
    pub fn open(config: DatabaseConfig) -> Arc<Database> {
        let log = LogManager::new(config.log.clone());
        Self::open_with_log(config, log)
    }

    /// Open around an existing log manager (recovery hands in one seeded
    /// with the surviving device bytes so new appends continue the LSN
    /// sequence past the old tail).
    pub(crate) fn open_with_log(config: DatabaseConfig, log: LogManager) -> Arc<Database> {
        let backend: Box<dyn ConcurrencyBackend> = match config.backend {
            BackendKind::Locked2pl => Box::new(LockedBackend),
            BackendKind::Mvcc => Box::new(MvccBackend::new(config.lock.max_agents, config.mvcc)),
        };
        Arc::new(Database {
            lockmgr: LockManager::new(config.lock),
            log: Arc::new(log),
            pool: Arc::new(BufferPool::new(config.pool)),
            row_work_ns: config.row_work_ns,
            backend,
            catalog: RwLock::new(HashMap::new()),
            tables: RwLock::new(Vec::new()),
        })
    }

    /// Create a table; fails if the name is taken. Binds any per-table
    /// policy override declared for this name — before any lock head for
    /// the table can exist, so every head resolves into the right scope.
    pub fn create_table(&self, name: &str) -> Result<TableHandle, EngineError> {
        self.create_table_inner(name, true)
    }

    /// `log = false` is the recovery path: the Create record being
    /// replayed is already in the log, so re-appending it would double it.
    pub(crate) fn create_table_inner(
        &self,
        name: &str,
        log: bool,
    ) -> Result<TableHandle, EngineError> {
        let mut catalog = self.catalog.write();
        if catalog.contains_key(name) {
            return Err(EngineError::DuplicateTable(name.to_string()));
        }
        let mut tables = self.tables.write();
        let handle = TableHandle(tables.len() as u32);
        tables.push(Arc::new(TableData {
            name: name.to_string(),
            heap: HeapTable::new(),
            primary: HashIndex::new(),
            ordered: OrderedIndex::new(),
        }));
        catalog.insert(name.to_string(), handle);
        self.lockmgr.bind_table_policy(name, handle.table_id());
        if log && self.log.retains() {
            self.log.append(LogRecord::create(handle.0, name));
        }
        Ok(handle)
    }

    /// Look up a table by name.
    pub fn table_handle(&self, name: &str) -> Option<TableHandle> {
        self.catalog.read().get(name).copied()
    }

    /// Names of all tables, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().iter().map(|t| t.name.clone()).collect()
    }

    pub(crate) fn table(&self, h: TableHandle) -> Arc<TableData> {
        Arc::clone(&self.tables.read()[h.0 as usize])
    }

    /// Table storage by raw id (recovery replay path).
    pub(crate) fn table_by_id(&self, id: u32) -> Option<Arc<TableData>> {
        self.tables.read().get(id as usize).map(Arc::clone)
    }

    /// Open a session (allocates a lock-manager agent). One per worker
    /// thread. Panics when the agent capacity is exceeded; use
    /// [`Database::try_session`] to handle that case.
    pub fn session(self: &Arc<Self>) -> Session {
        self.try_session()
            .expect("agent capacity exceeded; raise LockManagerConfig::max_agents")
    }

    /// Open a session, returning an error instead of panicking when
    /// `LockManagerConfig::max_agents` is exceeded.
    pub fn try_session(self: &Arc<Self>) -> Result<Session, EngineError> {
        Session::try_new(Arc::clone(self))
    }

    /// Non-transactional bulk load: insert directly into heap and indexes,
    /// bypassing locks. For dataset loaders only. On a durable database
    /// (see [`DatabaseConfig::durable`]) each row is logged under the
    /// loader pseudo-transaction so recovery can rebuild the base data.
    pub fn bulk_insert(
        &self,
        table: TableHandle,
        key: u64,
        ordered_key: Option<u64>,
        data: &[u8],
    ) -> Rid {
        let t = self.table(table);
        let bytes = Bytes::copy_from_slice(data);
        let rid = t.heap.insert(bytes.clone());
        t.primary.insert(key, rid);
        if let Some(ok) = ordered_key {
            t.ordered.insert(ok, rid);
        }
        self.pool.prewarm(table.0, rid.page);
        if self.log.retains() {
            self.log.append(LogRecord::insert(
                LOADER_TXN,
                table.0,
                rid.page,
                rid.slot,
                key,
                ordered_key,
                &bytes,
            ));
        }
        rid
    }

    /// Direct read bypassing locks (verification/debug only).
    pub fn peek(&self, table: TableHandle, key: u64) -> Option<Bytes> {
        let t = self.table(table);
        let rid = t.primary.get(key)?;
        t.heap.read(rid)
    }

    /// Number of live records in a table.
    pub fn record_count(&self, table: TableHandle) -> u64 {
        self.table(table).heap.record_count() as u64
    }

    /// The lock manager (for stats and advanced use).
    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.lockmgr
    }

    /// Which concurrency backend this database runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Display name of the concurrency backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.kind().name()
    }

    /// Settle backend background state while no transaction is running.
    /// On the MVCC backend this runs a full GC pass: version chains
    /// collapse back into bare heap records and tombstoned rows release
    /// their heap slots. Callers MUST guarantee no concurrent
    /// transactions (see `sli_mvcc::MvccStore::gc`); use it before
    /// whole-database comparisons like [`Database::state_hash`]. A no-op
    /// on the locked backend.
    pub fn quiesce(&self) {
        self.backend.quiesce(self);
    }

    /// MVCC store counters (`None` on the locked backend).
    pub fn mvcc_stats(&self) -> Option<MvccStats> {
        self.backend.mvcc_store().map(|s| s.stats())
    }

    /// Display name of the active inheritance policy.
    pub fn policy_name(&self) -> &'static str {
        self.lockmgr.policy().name()
    }

    /// Lock-manager counter snapshot.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.lockmgr.stats().snapshot()
    }

    /// Per-scope counter snapshot paired with the scope names from the
    /// policy map (`default`, `table:<name>`, `level:<level>`), in scope-id
    /// order.
    pub fn scope_stats(&self) -> Vec<(String, ScopeStatsSnapshot)> {
        let snap = self.lockmgr.stats().snapshot();
        self.lockmgr
            .policies()
            .scopes()
            .iter()
            .zip(snap.scopes)
            .map(|(scope, counters)| (scope.label(), counters))
            .collect()
    }

    /// WAL counter snapshot.
    pub fn log_stats(&self) -> LogStats {
        self.log.stats()
    }

    /// Force everything appended so far to the (simulated) log device.
    /// Loaders call this so the base data is durable before a crash is
    /// injected; see [`DatabaseConfig::durable`].
    pub fn force_log(&self) -> Result<Lsn, WalError> {
        self.log.force()
    }

    /// Copy of the log device's durable bytes (including any torn tail
    /// left by an injected flush failure). Empty unless the database was
    /// opened with [`DatabaseConfig::durable`].
    pub fn durable_log(&self) -> Vec<u8> {
        self.log.durable_snapshot()
    }

    /// Buffer-pool counter snapshot.
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.read().len())
            .field("lockmgr", &self.lockmgr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_create_and_lookup() {
        let db = Database::open(DatabaseConfig::default());
        let t1 = db.create_table("a").unwrap();
        let t2 = db.create_table("b").unwrap();
        assert_ne!(t1, t2);
        assert_eq!(db.table_handle("a"), Some(t1));
        assert_eq!(db.table_handle("c"), None);
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(
            db.create_table("a"),
            Err(EngineError::DuplicateTable("a".into()))
        );
    }

    #[test]
    fn bulk_insert_and_peek() {
        let db = Database::open(DatabaseConfig::default());
        let t = db.create_table("t").unwrap();
        db.bulk_insert(t, 7, None, b"payload");
        assert_eq!(&db.peek(t, 7).unwrap()[..], b"payload");
        assert_eq!(db.record_count(t), 1);
        assert!(db.peek(t, 8).is_none());
    }

    #[test]
    fn try_session_reports_capacity_exceeded_instead_of_panicking() {
        let mut cfg = DatabaseConfig::default();
        cfg.lock.max_agents = 2;
        let db = Database::open(cfg);
        let _s1 = db.try_session().expect("slot 0 fits");
        let _s2 = db.try_session().expect("slot 1 fits");
        match db.try_session() {
            Err(EngineError::TooManyAgents { max }) => assert_eq!(max, 2),
            Err(other) => panic!("expected TooManyAgents, got {other:?}"),
            Ok(_) => panic!("expected TooManyAgents, got a session"),
        }
        // Dropping a session recycles its agent slot.
        drop(_s1);
        let _s3 = db.try_session().expect("recycled slot fits");
        assert!(db.try_session().is_err());
    }

    #[test]
    fn builder_binds_table_overrides_at_create_table() {
        use sli_core::{LockId, PolicyKind};
        let db = Database::open(
            DatabaseConfig::default()
                .default_policy(PolicyKind::Baseline)
                .table_policy("hot", PolicyKind::AggressiveSli)
                .in_memory(),
        );
        let cold = db.create_table("cold").unwrap();
        let hot = db.create_table("hot").unwrap();
        assert_eq!(db.policy_name(), "baseline");

        // A transaction on each table: the hot table's heads must resolve
        // into the override scope, the cold table's into the default.
        let s = db.session();
        db.bulk_insert(hot, 1, None, b"h");
        db.bulk_insert(cold, 1, None, b"c");
        s.run(|txn| {
            txn.read_by_key(hot, 1)?;
            txn.read_by_key(cold, 1)?;
            Ok(())
        })
        .unwrap();
        let mgr = db.lock_manager();
        // Heads are GCed at commit; probe the map's resolution directly.
        let hot_scope = mgr.policies().resolve(LockId::Table(hot.table_id()));
        let cold_scope = mgr.policies().resolve(LockId::Table(cold.table_id()));
        assert_eq!(hot_scope.policy().name(), "aggressive");
        assert_eq!(cold_scope.policy().name(), "baseline");
        assert_ne!(hot_scope.scope_id(), cold_scope.scope_id());
        // Scope names surface through scope_stats.
        let names: Vec<String> = db.scope_stats().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "default(baseline)",
                "table:hot(aggressive)",
                "root(aggressive)"
            ],
            "scope names pair with snapshot rows"
        );
    }

    #[test]
    fn adaptive_builder_installs_the_adaptive_default() {
        let db = Database::open(DatabaseConfig::default().adaptive(0.5, 0.25).in_memory());
        assert_eq!(db.policy_name(), "adaptive");
        assert_eq!(db.lock_manager().policy().adaptive_counters(), Some((0, 0)));
    }

    #[test]
    fn per_scope_counters_attribute_inheritance_to_the_override() {
        use sli_core::{FastPathConfig, PolicyKind};
        // Latched path only, so inheritance is deterministic.
        let mut cfg = DatabaseConfig::default()
            .default_policy(PolicyKind::Baseline)
            .table_policy("hot", PolicyKind::AggressiveSli)
            .in_memory();
        cfg.lock.fastpath = FastPathConfig::disabled();
        let db = Database::open(cfg);
        let hot = db.create_table("hot").unwrap();
        let cold = db.create_table("cold").unwrap();
        db.bulk_insert(hot, 1, None, b"h");
        db.bulk_insert(cold, 1, None, b"c");
        let s = db.session();
        for _ in 0..3 {
            s.run(|txn| {
                txn.read_by_key(hot, 1)?;
                txn.read_by_key(cold, 1)?;
                Ok(())
            })
            .unwrap();
        }
        let scopes = db.scope_stats();
        let by_name = |needle: &str| {
            scopes
                .iter()
                .find(|(n, _)| n.starts_with(needle))
                .map(|(_, c)| *c)
                .unwrap()
        };
        let hot_counters = by_name("table:hot");
        let default_counters = by_name("default");
        assert!(
            hot_counters.inherited > 0,
            "aggressive override must inherit: {scopes:?}"
        );
        assert!(
            hot_counters.reclaimed > 0,
            "later txns reclaim the override's hand-offs: {scopes:?}"
        );
        assert_eq!(
            default_counters.inherited, 0,
            "baseline default must not inherit: {scopes:?}"
        );
        let total = db.lock_stats();
        assert_eq!(
            total.sli_inherited,
            scopes.iter().map(|(_, c)| c.inherited).sum::<u64>(),
            "scope attribution must add up to the global counter"
        );
    }
}
