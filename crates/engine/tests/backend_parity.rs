//! Cross-backend parity: the `ConcurrencyBackend` seam must not change
//! *what* the engine computes, only *how* concurrent transactions are
//! isolated.
//!
//! 1. A deterministic single-agent schedule of inserts, updates, deletes,
//!    and ordered scans produces bit-identical logical state
//!    (`Database::state_hash`) and identical scan output on the locked
//!    2PL backend and the MVCC backend.
//! 2. TPC-B-style concurrent transfers on MVCC preserve the conservation
//!    invariant (total balance constant) with validation losers retried —
//!    the `TxnError::Validation` retry contract actually converges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sli_engine::{BackendKind, Database, DatabaseConfig, TxnError};

fn open(kind: BackendKind) -> Arc<Database> {
    Database::open(DatabaseConfig::default().backend(kind).in_memory())
}

/// The deterministic schedule: build a keyed+ordered table, rewrite part
/// of it, scan a range, delete a band, scan again. All inserts precede
/// all deletes so heap slot reuse cannot diverge between the eager
/// (locked) and deferred-to-quiesce (MVCC) reclamation paths.
fn run_schedule(db: &Arc<Database>) -> Vec<(u64, Vec<u8>)> {
    let t = db.create_table("parity").unwrap();
    let s = db.session();
    let mut scanned = Vec::new();

    // Seed rows, several per transaction.
    for chunk in 0..8u64 {
        s.run(|txn| {
            for i in 0..8u64 {
                let k = chunk * 8 + i;
                txn.insert_with_okey(t, k, Some(k), format!("seed-{k}").as_bytes())?;
            }
            Ok(())
        })
        .unwrap();
    }

    // Rewrite every third row; read-modify-write every seventh.
    s.run(|txn| {
        for k in (0..64u64).step_by(3) {
            txn.update_by_key(t, k, |_| format!("upd-{k}").into_bytes())?;
        }
        Ok(())
    })
    .unwrap();
    s.run(|txn| {
        for k in (0..64u64).step_by(7) {
            let before = txn.read_by_key(t, k)?;
            let mut next = before.to_vec();
            next.extend_from_slice(b"+rmw");
            txn.update_by_key(t, k, |_| next.clone())?;
        }
        Ok(())
    })
    .unwrap();

    // A read-only ordered scan between the write phases.
    s.run(|txn| {
        txn.scan_ordered(t, 10, 40, usize::MAX, |k, data| {
            scanned.push((k, data.to_vec()));
        })?;
        Ok(())
    })
    .unwrap();

    // Delete a band (mixed plain and previously-updated rows), plus a
    // rolled-back transaction that must leave no trace.
    s.run(|txn| {
        for k in 20..30u64 {
            txn.delete_by_key(t, k, Some(k))?;
        }
        Ok(())
    })
    .unwrap();
    let aborted: Result<(), TxnError> = s.run(|txn| {
        txn.update_by_key(t, 5, |_| b"dirty".to_vec())?;
        txn.delete_by_key(t, 6, Some(6))?;
        Err(txn.user_abort("parity: deliberate rollback"))
    });
    assert!(aborted.is_err());

    // Final scan over the deleted band's edges.
    s.run(|txn| {
        txn.scan_ordered(t, 15, 35, usize::MAX, |k, data| {
            scanned.push((k, data.to_vec()));
        })?;
        Ok(())
    })
    .unwrap();

    scanned
}

#[test]
fn deterministic_schedule_hashes_identically_across_backends() {
    let locked = open(BackendKind::Locked2pl);
    let mvcc = open(BackendKind::Mvcc);

    let scan_locked = run_schedule(&locked);
    let scan_mvcc = run_schedule(&mvcc);
    assert_eq!(scan_locked, scan_mvcc, "scan output diverged");

    // Collapse MVCC chains into the heap (applies deferred deletes) so
    // both databases expose their logical state the same way; quiesce is
    // a no-op on the locked backend.
    locked.quiesce();
    mvcc.quiesce();
    assert_eq!(
        locked.state_hash(),
        mvcc.state_hash(),
        "logical state diverged between Locked2pl and Mvcc"
    );
    assert_eq!(
        locked.record_count(locked.table_handle("parity").unwrap()),
        54
    );
    assert_eq!(mvcc.record_count(mvcc.table_handle("parity").unwrap()), 54);
}

#[test]
fn concurrent_transfers_preserve_balance_under_mvcc() {
    const ACCOUNTS: u64 = 8;
    const THREADS: usize = 4;
    const TRANSFERS: usize = 150;
    const OPENING: i64 = 1_000;

    let db = open(BackendKind::Mvcc);
    let t = db.create_table("acct").unwrap();
    for k in 0..ACCOUNTS {
        db.bulk_insert(t, k, None, &OPENING.to_le_bytes());
    }

    let retried = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for me in 0..THREADS {
            let db = Arc::clone(&db);
            let retried = Arc::clone(&retried);
            scope.spawn(move || {
                let s = db.session();
                let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(me as u64 + 1);
                for i in 0..TRANSFERS {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let from = rng % ACCOUNTS;
                    let to = (from + 1 + (rng >> 16) % (ACCOUNTS - 1)) % ACCOUNTS;
                    let delta = (i as i64 % 17) + 1;
                    let mut attempts = 0u64;
                    s.run_with_retries(1_000, |txn| {
                        attempts += 1;
                        let debit =
                            i64::from_le_bytes(txn.read_by_key(t, from)?[..8].try_into().unwrap());
                        let credit =
                            i64::from_le_bytes(txn.read_by_key(t, to)?[..8].try_into().unwrap());
                        txn.update_by_key(t, from, |_| (debit - delta).to_le_bytes().to_vec())?;
                        txn.update_by_key(t, to, |_| (credit + delta).to_le_bytes().to_vec())?;
                        Ok(())
                    })
                    .expect("transfer must eventually commit");
                    retried.fetch_add(attempts - 1, Ordering::Relaxed);
                }
            });
        }
    });

    // Conservation: snapshot the bank in one transaction.
    let s = db.session();
    let total: i64 = s
        .run(|txn| {
            let mut sum = 0i64;
            for k in 0..ACCOUNTS {
                sum += i64::from_le_bytes(txn.read_by_key(t, k)?[..8].try_into().unwrap());
            }
            Ok(sum)
        })
        .unwrap();
    assert_eq!(total, OPENING * ACCOUNTS as i64, "balance not conserved");

    // The run really exercised the OCC abort/retry path: with 4 threads
    // hammering 8 rows, validation conflicts are certain.
    let stats = db.mvcc_stats().expect("mvcc backend exposes stats");
    assert!(
        stats.validation_aborts + stats.ww_conflicts > 0,
        "no conflicts at all — the test is not stressing validation"
    );
    assert_eq!(
        retried.load(Ordering::Relaxed),
        stats.validation_aborts + stats.ww_conflicts,
        "every retry corresponds to a recorded conflict"
    );

    // And the lock manager sat idle the whole time.
    let locks = db.lock_stats();
    assert_eq!(locks.lock_requests, 0, "MVCC run touched the lock manager");
}
