//! End-to-end recovery properties over arbitrary workloads and arbitrary
//! crash points: cut the durable log anywhere, recover, and
//!
//! 1. recovery never fails structurally and never replays past the cut,
//! 2. `recover(recover(log)) == recover(log)` — recovery is idempotent
//!    (the recovered log is a fixpoint: the second pass undoes nothing
//!    and produces an identical state hash),
//! 3. a full-length cut reproduces the crashed database's exact state.

use proptest::prelude::*;
use sli_engine::{Database, DatabaseConfig, DecodeEnd, TxnError};

/// One scripted transaction against a single-table database: a few
/// operations drawn from (insert, update, delete), then commit or
/// user-abort. Keys are drawn from a small space so transactions collide
/// and exercise slot reuse.
#[derive(Clone, Debug)]
struct Op {
    kind: u8,
    key: u64,
    val: u8,
}

fn arb_txn() -> impl Strategy<Value = (Vec<Op>, bool)> {
    (
        prop::collection::vec(
            (0u8..3, 0u64..24, 0u8..=255).prop_map(|(kind, key, val)| Op { kind, key, val }),
            1..6,
        ),
        prop::bool::ANY,
    )
}

/// Run the scripted transactions against a fresh durable database and
/// return it. Lock failures can't happen (single session); NotFound is
/// absorbed by mapping ops onto insert-or-update / delete-if-present.
fn build(txns: &[(Vec<Op>, bool)]) -> std::sync::Arc<Database> {
    let db = Database::open(DatabaseConfig::default().in_memory().durable());
    let t = db.create_table("t").unwrap();
    for k in 0..8u64 {
        db.bulk_insert(t, k, Some(k), &[k as u8; 4]);
    }
    db.force_log().unwrap();
    let s = db.session();
    for (ops, commit) in txns {
        let ops = ops.clone();
        let commit = *commit;
        let _ = s.run(|txn| {
            for op in &ops {
                match op.kind {
                    0 => {
                        // Insert-or-update.
                        if txn.lookup(t, op.key).is_some() {
                            txn.update_by_key(t, op.key, |_| vec![op.val; 4])?;
                        } else {
                            txn.insert_with_okey(t, op.key, Some(op.key), &[op.val; 4])?;
                        }
                    }
                    1 => {
                        if txn.lookup(t, op.key).is_some() {
                            txn.update_by_key(t, op.key, |_| vec![op.val; 3])?;
                        }
                    }
                    _ => {
                        if txn.lookup(t, op.key).is_some() {
                            txn.delete_by_key(t, op.key, Some(op.key))?;
                        }
                    }
                }
            }
            if commit {
                Ok(())
            } else {
                Err(txn.user_abort("scripted rollback"))
            }
        });
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash anywhere: recovery succeeds, is idempotent, and a
    /// full-length log reproduces the crashed state exactly.
    #[test]
    fn recovery_is_idempotent_at_any_crash_point(
        txns in prop::collection::vec(arb_txn(), 1..8),
        cut_sel in 0u64..10_000,
    ) {
        let db = build(&txns);
        let log = db.durable_log();
        let cut = log.len() * cut_sel as usize / 10_000;

        let (rec1, rep1) = Database::recover(DatabaseConfig::default().in_memory(), &log[..cut])
            .expect("recovery never fails structurally");
        prop_assert!(rep1.consumed <= cut);

        // Idempotence: recover the recovered log. Pure redo, same state.
        let log2 = rec1.durable_log();
        let (rec2, rep2) = Database::recover(DatabaseConfig::default().in_memory(), &log2)
            .expect("recovered log recovers");
        prop_assert_eq!(rep2.undone, 0, "second recovery undoes nothing");
        prop_assert_eq!(rep2.end, DecodeEnd::Clean);
        prop_assert_eq!(rec2.state_hash(), rec1.state_hash(), "recover . recover == recover");

        // Full log: every session.run either committed (and was forced
        // durable) or rolled back with durable compensations before the
        // next txn started, so the whole-log recovery matches the live DB.
        if cut == log.len() {
            prop_assert_eq!(rep1.end, DecodeEnd::Clean);
            prop_assert_eq!(rec1.state_hash(), db.state_hash(), "full log reproduces the crash state");
        }
    }

    /// Workload invariant through recovery: the primary index and the heap
    /// agree — every recovered key reads back, and the record count matches
    /// the index size.
    #[test]
    fn recovered_indexes_agree_with_the_heap(
        txns in prop::collection::vec(arb_txn(), 1..6),
        cut_sel in 0u64..10_000,
    ) {
        let db = build(&txns);
        let log = db.durable_log();
        let cut = log.len() * cut_sel as usize / 10_000;
        let (rec, _) = Database::recover(DatabaseConfig::default().in_memory(), &log[..cut]).unwrap();
        if let Some(t) = rec.table_handle("t") {
            let mut live = 0u64;
            for k in 0..200u64 {
                if rec.peek(t, k).is_some() {
                    live += 1;
                }
            }
            prop_assert_eq!(live, rec.record_count(t), "index and heap agree");
        }
    }
}

/// Deterministic corruption sweep rides along with the properties: any
/// single flipped bit in the log either truncates replay (never replays
/// the damaged record) or fails loudly — it never silently produces a
/// diverged state that a second recovery disagrees with.
#[test]
fn flipped_bits_never_replay_silently() {
    let db = build(&[(
        vec![
            Op {
                kind: 0,
                key: 3,
                val: 7,
            },
            Op {
                kind: 2,
                key: 1,
                val: 0,
            },
        ],
        true,
    )]);
    let log = db.durable_log();
    let mut state = 0x2545F4914F6CDD1Du64;
    for _ in 0..64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let idx = (state as usize >> 8) % log.len();
        let bit = (state as u8) & 7;
        let mut bad = log.clone();
        bad[idx] ^= 1 << bit;
        if let Ok((rec, rep)) = Database::recover(DatabaseConfig::default().in_memory(), &bad) {
            assert_ne!(rep.end, DecodeEnd::Clean, "damage must be surfaced");
            assert!(rep.consumed < log.len());
            let (rec2, rep2) =
                Database::recover(DatabaseConfig::default().in_memory(), &rec.durable_log())
                    .unwrap();
            assert_eq!(rep2.undone, 0);
            assert_eq!(rec2.state_hash(), rec.state_hash());
        }
    }
    let _ = TxnError::NotFound; // exercise the re-export
}
