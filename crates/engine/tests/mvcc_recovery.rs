//! MVCC durability regression: transactions committed through the MVCC
//! backend ride the same WAL/group-commit pipeline as locked ones, so
//! they must survive crashes the same way — and the log itself must stay
//! backend-agnostic (a log written under MVCC recovers under 2PL and
//! vice versa).

use std::sync::Arc;

use sli_engine::{BackendKind, Database, DatabaseConfig, DecodeEnd};

fn durable_mvcc() -> Arc<Database> {
    Database::open(
        DatabaseConfig::default()
            .backend(BackendKind::Mvcc)
            .in_memory()
            .durable(),
    )
}

fn mvcc_cfg() -> DatabaseConfig {
    DatabaseConfig::default()
        .backend(BackendKind::Mvcc)
        .in_memory()
}

/// Commit a few transactions (insert, update, delete) against `db`.
fn build(db: &Arc<Database>) {
    let t = db.create_table("t").unwrap();
    let s = db.session();
    s.run(|txn| {
        for k in 0..16u64 {
            txn.insert_with_okey(t, k, Some(k), format!("v{k}").as_bytes())?;
        }
        Ok(())
    })
    .unwrap();
    s.run(|txn| {
        txn.update_by_key(t, 3, |_| b"updated".to_vec())?;
        txn.delete_by_key(t, 7, Some(7))?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn mvcc_commits_survive_a_clean_crash() {
    let db = durable_mvcc();
    build(&db);
    db.force_log().unwrap();
    db.quiesce();
    let before = db.state_hash();
    let log = db.durable_log();

    let (rec, report) = Database::recover(mvcc_cfg(), &log).expect("recovery succeeds");
    assert_eq!(report.end, DecodeEnd::Clean);
    assert_eq!(report.undone, 0, "all transactions committed");
    assert_eq!(rec.state_hash(), before, "MVCC-committed state survives");
    let t = rec.table_handle("t").unwrap();
    assert_eq!(&rec.peek(t, 3).unwrap()[..], b"updated");
    assert!(rec.peek(t, 7).is_none(), "committed delete survives");
}

#[test]
fn mvcc_recovered_database_accepts_new_transactions() {
    let db = durable_mvcc();
    build(&db);
    db.force_log().unwrap();
    let log = db.durable_log();

    // Recover *as MVCC*: the timestamp allocator must resume above every
    // replayed WAL txn id (`on_recovered`), so new snapshots see the
    // recovered state and new commits order after it.
    let (rec, _) = Database::recover(mvcc_cfg(), &log).unwrap();
    let t = rec.table_handle("t").unwrap();
    let s = rec.session();
    s.run(|txn| {
        assert_eq!(&txn.read_by_key(t, 3)?[..], b"updated");
        txn.update_by_key(t, 4, |_| b"post-recovery".to_vec())?;
        txn.insert_with_okey(t, 100, Some(100), b"new")?;
        Ok(())
    })
    .unwrap();
    rec.quiesce();
    assert_eq!(&rec.peek(t, 4).unwrap()[..], b"post-recovery");
    assert_eq!(&rec.peek(t, 100).unwrap()[..], b"new");
}

#[test]
fn torn_tail_drops_only_uncommitted_mvcc_work() {
    let db = durable_mvcc();
    build(&db);
    db.force_log().unwrap();
    let log = db.durable_log();

    // Tear the log mid-record at three different depths: recovery must
    // never fail, and whatever it recovers must itself be recoverable
    // (idempotent fixpoint), MVCC config throughout.
    for cut in [log.len() / 3, log.len() / 2, log.len() - 1] {
        let (rec, _) = Database::recover(mvcc_cfg(), &log[..cut])
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e:?}"));
        let log2 = rec.durable_log();
        let (rec2, rep2) = Database::recover(mvcc_cfg(), &log2).unwrap();
        assert_eq!(rep2.undone, 0, "second pass undoes nothing (cut {cut})");
        assert_eq!(rec2.state_hash(), rec.state_hash(), "fixpoint (cut {cut})");
    }
}

#[test]
fn the_log_is_backend_agnostic() {
    // Same schedule, one log per backend; each log recovers under *both*
    // backends to the same logical state.
    let mvcc = durable_mvcc();
    build(&mvcc);
    mvcc.force_log().unwrap();
    let locked = Database::open(DatabaseConfig::default().in_memory().durable());
    build(&locked);
    locked.force_log().unwrap();

    let mut hashes = Vec::new();
    for log in [mvcc.durable_log(), locked.durable_log()] {
        for cfg in [mvcc_cfg(), DatabaseConfig::default().in_memory()] {
            let (rec, report) = Database::recover(cfg, &log).unwrap();
            assert_eq!(report.end, DecodeEnd::Clean);
            hashes.push(rec.state_hash());
        }
    }
    assert!(
        hashes.windows(2).all(|w| w[0] == w[1]),
        "backend choice leaked into recovered state: {hashes:?}"
    );
}
