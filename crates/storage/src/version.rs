//! Per-record version chains for the MVCC backend.
//!
//! A [`VersionChain`] is the multiversion overlay for one heap record
//! (one [`Rid`]): a newest-first list of committed [`Version`]s plus at
//! most one *provisional* version owned by an uncommitted writer, per
//! Larson et al., *High-Performance Concurrency Control Mechanisms for
//! Main-Memory Databases* (arXiv 1201.0228). The chain is a pure data
//! structure — all synchronization (shard latches, the timestamp
//! allocator, the active-snapshot registry) lives in `sli-mvcc`, which
//! keeps visibility resolution a *pure function* of `(chain, read_ts)`
//! and therefore directly property-testable.
//!
//! Timestamp conventions:
//!
//! - [`BASE_TS`] (0) marks the *base* version: the value the heap held
//!   before the record ever had a chain. It is visible to every
//!   snapshot.
//! - A committed version's `begin` is its writer's commit timestamp;
//!   commit timestamps are allocated from 2 upward, so they never
//!   collide with [`BASE_TS`].
//! - [`NOTHING_SEEN`] (`u64::MAX`) is the read-set identity recorded
//!   when a chain exists but *no* version is visible at the reader's
//!   snapshot (a record inserted after the snapshot was taken). It can
//!   never equal a real `begin`, so validation treats "saw nothing" and
//!   "saw the base" as distinct observations.

use bytes::Bytes;

/// The `begin` timestamp of the base (pre-chain heap) version.
pub const BASE_TS: u64 = 0;

/// Read-set identity for "chain present, nothing visible".
pub const NOTHING_SEEN: u64 = u64::MAX;

/// One committed version of a record. `data == None` is a tombstone:
/// the record was deleted at `begin` and is invisible from then on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Version {
    /// Commit timestamp of the writer that installed this version
    /// ([`BASE_TS`] for the pre-chain heap value).
    pub begin: u64,
    /// Record bytes, or `None` for a delete tombstone.
    pub data: Option<Bytes>,
}

/// An uncommitted version installed by a running writer. At most one
/// exists per chain (first-writer-wins: a second writer aborts instead
/// of queueing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provisional {
    /// Owner token (the writing session's agent slot + 1 in `sli-mvcc`;
    /// this crate only compares it for equality).
    pub owner: u64,
    /// Proposed record bytes, or `None` for a provisional delete.
    pub data: Option<Bytes>,
}

/// What a snapshot read resolved to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observation {
    /// The bytes visible at the snapshot (`None`: record invisible —
    /// tombstoned at or before the snapshot, or inserted after it).
    pub data: Option<Bytes>,
    /// Identity of the observed version for commit-time validation:
    /// the version's `begin`, or [`NOTHING_SEEN`].
    pub seen: u64,
}

/// The multiversion overlay for one record.
#[derive(Clone, Debug, Default)]
pub struct VersionChain {
    /// The uncommitted write, if any.
    pub provisional: Option<Provisional>,
    /// Committed versions, newest first (strictly decreasing `begin`).
    pub committed: Vec<Version>,
}

impl VersionChain {
    /// Chain seeded from the pre-chain heap value (`base = None` models
    /// a record that did not exist before: an insert's chain).
    pub fn with_base(base: Option<Bytes>) -> Self {
        VersionChain {
            provisional: None,
            committed: match base {
                Some(data) => vec![Version {
                    begin: BASE_TS,
                    data: Some(data),
                }],
                None => Vec::new(),
            },
        }
    }

    /// The newest committed version visible at `read_ts`: the first
    /// entry with `begin <= read_ts`. Pure function of `(self, read_ts)`.
    pub fn visible_at(&self, read_ts: u64) -> Observation {
        match self.committed.iter().find(|v| v.begin <= read_ts) {
            Some(v) => Observation {
                data: v.data.clone(),
                seen: v.begin,
            },
            None => Observation {
                data: None,
                seen: NOTHING_SEEN,
            },
        }
    }

    /// Identity of the newest committed version (what a commit-time
    /// validation compares against a read-set entry's `seen`).
    pub fn newest_identity(&self) -> u64 {
        self.committed
            .first()
            .map(|v| v.begin)
            .unwrap_or(NOTHING_SEEN)
    }

    /// Flip this chain's provisional version (which must be owned by
    /// `owner`) into the newest committed version at `commit_ts`.
    /// Returns false (and changes nothing) if no such provisional is
    /// present — the caller already flipped this chain for another write
    /// of the same transaction.
    pub fn install(&mut self, owner: u64, commit_ts: u64) -> bool {
        match &self.provisional {
            Some(p) if p.owner == owner => {
                let data = self.provisional.take().expect("matched Some").data;
                debug_assert!(
                    self.newest_identity() == NOTHING_SEEN || self.committed[0].begin < commit_ts
                );
                self.committed.insert(
                    0,
                    Version {
                        begin: commit_ts,
                        data,
                    },
                );
                true
            }
            _ => false,
        }
    }

    /// Drop this chain's provisional version if `owner` holds it.
    /// Returns true if the chain is now empty and should be removed
    /// from the map (an aborted insert's chain).
    pub fn discard(&mut self, owner: u64) -> bool {
        if matches!(&self.provisional, Some(p) if p.owner == owner) {
            self.provisional = None;
        }
        self.provisional.is_none() && self.committed.is_empty()
    }

    /// Prune committed versions shadowed by a newer committed version
    /// that every active snapshot can already see (`begin <=
    /// watermark`). The newest committed version is never pruned.
    /// Returns the number of versions dropped.
    pub fn prune(&mut self, watermark: u64) -> usize {
        for i in 1..self.committed.len() {
            if self.committed[i - 1].begin <= watermark {
                let dropped = self.committed.len() - i;
                self.committed.truncate(i);
                return dropped;
            }
        }
        0
    }

    /// True when the chain can be dropped entirely with the heap as the
    /// single remaining copy: no provisional in flight. (The `sli-mvcc`
    /// GC additionally requires that *no* snapshot is active, because a
    /// collapse changes the `newest_identity` a validating transaction
    /// would recompute.)
    pub fn collapsible(&self) -> bool {
        self.provisional.is_none()
    }

    /// True when the newest committed version is a delete tombstone —
    /// collapsing such a chain must also delete the heap record.
    pub fn ends_in_tombstone(&self) -> bool {
        matches!(self.committed.first(), Some(v) if v.data.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn chain(begins: &[(u64, Option<&str>)]) -> VersionChain {
        VersionChain {
            provisional: None,
            committed: begins
                .iter()
                .map(|(ts, d)| Version {
                    begin: *ts,
                    data: d.map(b),
                })
                .collect(),
        }
    }

    #[test]
    fn visibility_picks_newest_at_or_below_snapshot() {
        let c = chain(&[(9, Some("v9")), (5, Some("v5")), (0, Some("base"))]);
        assert_eq!(c.visible_at(4).data.unwrap(), b("base"));
        assert_eq!(c.visible_at(5).data.unwrap(), b("v5"));
        assert_eq!(c.visible_at(8).seen, 5);
        assert_eq!(c.visible_at(9).seen, 9);
        assert_eq!(c.visible_at(u64::MAX - 1).data.unwrap(), b("v9"));
    }

    #[test]
    fn fresh_insert_is_invisible_to_older_snapshots() {
        let c = chain(&[(7, Some("new"))]);
        let obs = c.visible_at(6);
        assert_eq!(obs.data, None);
        assert_eq!(obs.seen, NOTHING_SEEN);
        assert_eq!(c.visible_at(7).seen, 7);
    }

    #[test]
    fn tombstone_is_visible_nothing_with_identity() {
        let c = chain(&[(7, None), (0, Some("base"))]);
        let obs = c.visible_at(8);
        assert_eq!(obs.data, None);
        assert_eq!(obs.seen, 7, "a tombstone read has the tombstone's identity");
        assert!(c.ends_in_tombstone());
    }

    #[test]
    fn install_flips_provisional_to_front() {
        let mut c = VersionChain::with_base(Some(b("base")));
        c.provisional = Some(Provisional {
            owner: 3,
            data: Some(b("new")),
        });
        assert!(!c.install(4, 9), "wrong owner must not flip");
        assert!(c.install(3, 9));
        assert_eq!(c.newest_identity(), 9);
        assert_eq!(c.visible_at(9).data.unwrap(), b("new"));
        assert_eq!(c.visible_at(8).data.unwrap(), b("base"));
        assert!(!c.install(3, 10), "second flip is a no-op");
    }

    #[test]
    fn discard_reports_empty_chains() {
        let mut c = VersionChain::with_base(None);
        c.provisional = Some(Provisional {
            owner: 1,
            data: Some(b("x")),
        });
        assert!(c.discard(1), "aborted insert leaves an empty chain");
        let mut c2 = VersionChain::with_base(Some(b("base")));
        c2.provisional = Some(Provisional {
            owner: 1,
            data: None,
        });
        assert!(!c2.discard(1), "base version keeps the chain alive");
    }

    #[test]
    fn prune_keeps_everything_any_snapshot_needs() {
        let mut c = chain(&[
            (9, Some("v9")),
            (5, Some("v5")),
            (3, Some("v3")),
            (0, Some("base")),
        ]);
        // watermark 4: v3 is visible to every snapshot (begin 3 <= 4), so
        // only the base below it is dead; v5 and v9 may be needed later.
        assert_eq!(c.prune(4), 1);
        assert_eq!(c.visible_at(4).seen, 3);
        // watermark 5: v5 is visible to every active snapshot, so v3 and
        // base are dead.
        let mut c2 = chain(&[
            (9, Some("v9")),
            (5, Some("v5")),
            (3, Some("v3")),
            (0, Some("base")),
        ]);
        assert_eq!(c2.prune(5), 2);
        assert_eq!(c2.committed.len(), 2);
        assert_eq!(c2.visible_at(5).seen, 5);
        // The newest version survives even a max watermark.
        let mut c3 = chain(&[(9, Some("v9")), (5, Some("v5"))]);
        assert_eq!(c3.prune(u64::MAX), 1);
        assert_eq!(c3.newest_identity(), 9);
    }
}
