//! Slotted pages and record identifiers.

use bytes::Bytes;

/// Record slots per page. Sized so that tables of a few hundred thousand
/// rows span thousands of pages, giving page-level locks a realistic
/// population.
pub const SLOTS_PER_PAGE: usize = 64;

/// A record identifier: page number plus slot within the page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page number within the table.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a RID.
    pub fn new(page: u32, slot: u16) -> Self {
        Rid { page, slot }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// A fixed-slot-count page of variable-length records.
///
/// Real slotted pages manage a byte heap with a slot directory; for this
/// reproduction the interesting property is the page as a *locking and
/// latching granule*, so records are stored as individual `Bytes` values
/// (cheap to clone, shared with the WAL's before/after images).
#[derive(Debug)]
pub struct SlottedPage {
    slots: [Option<Bytes>; SLOTS_PER_PAGE],
    live: u16,
}

impl SlottedPage {
    /// Fresh, empty page.
    pub fn new() -> Self {
        SlottedPage {
            slots: [const { None }; SLOTS_PER_PAGE],
            live: 0,
        }
    }

    /// Number of occupied slots.
    pub fn live(&self) -> u16 {
        self.live
    }

    /// True when no slot is free.
    pub fn is_full(&self) -> bool {
        (self.live as usize) == SLOTS_PER_PAGE
    }

    /// Insert a record, returning its slot, or `None` when full.
    pub fn insert(&mut self, data: Bytes) -> Option<u16> {
        if self.is_full() {
            return None;
        }
        let slot = self.slots.iter().position(|s| s.is_none())?;
        self.slots[slot] = Some(data);
        self.live += 1;
        Some(slot as u16)
    }

    /// Read the record in `slot`.
    pub fn read(&self, slot: u16) -> Option<Bytes> {
        self.slots.get(slot as usize)?.clone()
    }

    /// Overwrite the record in `slot`, returning the before image.
    /// Fails (returns `None`) when the slot is empty.
    pub fn update(&mut self, slot: u16, data: Bytes) -> Option<Bytes> {
        let cell = self.slots.get_mut(slot as usize)?;
        let before = cell.take()?;
        *cell = Some(data);
        Some(before)
    }

    /// Remove the record in `slot`, returning the before image.
    pub fn delete(&mut self, slot: u16) -> Option<Bytes> {
        let cell = self.slots.get_mut(slot as usize)?;
        let before = cell.take()?;
        self.live -= 1;
        Some(before)
    }

    /// Restore a record into a specific slot (undo of a delete, or redo
    /// of an insert during recovery). Overwrites and returns whatever the
    /// slot held, so callers can keep live-record accounting idempotent.
    pub fn restore(&mut self, slot: u16, data: Bytes) -> Option<Bytes> {
        let cell = &mut self.slots[slot as usize];
        let prev = cell.take();
        if prev.is_none() {
            self.live += 1;
        }
        *cell = Some(data);
        prev
    }

    /// Iterate over `(slot, record)` pairs of occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Bytes)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|b| (i as u16, b)))
    }
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_until_full() {
        let mut p = SlottedPage::new();
        for i in 0..SLOTS_PER_PAGE {
            let slot = p.insert(Bytes::from(vec![i as u8])).unwrap();
            assert_eq!(slot as usize, i);
        }
        assert!(p.is_full());
        assert!(p.insert(Bytes::from_static(b"x")).is_none());
        assert_eq!(p.live() as usize, SLOTS_PER_PAGE);
    }

    #[test]
    fn update_returns_before_image() {
        let mut p = SlottedPage::new();
        let s = p.insert(Bytes::from_static(b"old")).unwrap();
        let before = p.update(s, Bytes::from_static(b"new")).unwrap();
        assert_eq!(&before[..], b"old");
        assert_eq!(&p.read(s).unwrap()[..], b"new");
    }

    #[test]
    fn update_empty_slot_fails() {
        let mut p = SlottedPage::new();
        assert!(p.update(0, Bytes::from_static(b"x")).is_none());
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = SlottedPage::new();
        let s0 = p.insert(Bytes::from_static(b"a")).unwrap();
        let _s1 = p.insert(Bytes::from_static(b"b")).unwrap();
        let before = p.delete(s0).unwrap();
        assert_eq!(&before[..], b"a");
        assert_eq!(p.live(), 1);
        assert!(p.read(s0).is_none());
        // The freed slot is reused first.
        let s2 = p.insert(Bytes::from_static(b"c")).unwrap();
        assert_eq!(s2, s0);
    }

    #[test]
    fn restore_undoes_a_delete() {
        let mut p = SlottedPage::new();
        let s = p.insert(Bytes::from_static(b"v")).unwrap();
        p.delete(s).unwrap();
        assert_eq!(p.restore(s, Bytes::from_static(b"v")), None);
        assert_eq!(&p.read(s).unwrap()[..], b"v");
        assert_eq!(p.live(), 1);
        // Restoring onto an occupied slot overwrites, returns the old
        // bytes, and leaves the live count unchanged.
        let prev = p.restore(s, Bytes::from_static(b"w")).unwrap();
        assert_eq!(&prev[..], b"v");
        assert_eq!(p.live(), 1);
    }

    #[test]
    fn iter_visits_only_live_slots() {
        let mut p = SlottedPage::new();
        let a = p.insert(Bytes::from_static(b"a")).unwrap();
        let b = p.insert(Bytes::from_static(b"b")).unwrap();
        p.delete(a).unwrap();
        let entries: Vec<_> = p.iter().map(|(s, d)| (s, d.clone())).collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, b);
    }
}
