//! Buffer-pool residency simulation.
//!
//! Data always lives in memory (as in the paper's tmpfs-backed database);
//! the pool tracks which `(table, page)` frames would be resident and
//! charges the configured I/O penalty on misses — the paper's "6 msec
//! penalty for each I/O operation" standing in for a many-spindle disk
//! array where requests proceed in parallel but each pays a seek.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sli_latch::Latched;
use sli_profiler::Category;
use sli_profiler::Component;

/// Buffer pool configuration.
#[derive(Clone, Debug)]
pub struct BufferPoolConfig {
    /// Number of page frames. Accesses beyond this working set miss.
    pub frames: usize,
    /// Penalty charged per miss (paper default: 6 ms).
    pub io_latency: Duration,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        BufferPoolConfig {
            frames: 1 << 20, // effectively everything resident
            io_latency: Duration::from_millis(6),
        }
    }
}

impl BufferPoolConfig {
    /// A pool where every access hits (the paper's in-memory NDBB setup).
    pub fn all_in_memory() -> Self {
        BufferPoolConfig {
            frames: usize::MAX,
            io_latency: Duration::ZERO,
        }
    }

    /// A pool sized to `frames` with the paper's 6 ms penalty (the
    /// "disk-resident" TPC-B/TPC-C setups).
    pub fn disk_resident(frames: usize) -> Self {
        BufferPoolConfig {
            frames,
            io_latency: Duration::from_millis(6),
        }
    }
}

/// Monotonic hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Accesses that found the frame resident.
    pub hits: u64,
    /// Accesses that paid the I/O penalty.
    pub misses: u64,
    /// Frames evicted by the clock hand.
    pub evictions: u64,
}

struct Frame {
    referenced: bool,
}

struct PoolInner {
    frames: HashMap<(u32, u32), Frame>,
    clock: Vec<(u32, u32)>,
    hand: usize,
}

/// Clock-eviction residency tracker.
pub struct BufferPool {
    config: BufferPoolConfig,
    inner: Latched<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    /// Create a pool.
    pub fn new(config: BufferPoolConfig) -> Self {
        BufferPool {
            config,
            inner: Latched::new(
                Component::BufferPool,
                PoolInner {
                    frames: HashMap::new(),
                    clock: Vec::new(),
                    hand: 0,
                },
            ),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Touch `(table, page)`: account a hit, or pay the miss penalty and
    /// make it resident (possibly evicting).
    pub fn access(&self, table: u32, page: u32) {
        let _work = sli_profiler::enter(Category::Work(Component::BufferPool));
        if self.config.frames == usize::MAX {
            // Fully resident configuration: pure accounting.
            // ordering: monotonic statistics counter; nothing is published
            // through it.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let key = (table, page);
        let miss = {
            let mut inner = self.inner.lock();
            if let Some(f) = inner.frames.get_mut(&key) {
                f.referenced = true;
                false
            } else {
                // Bring in; evict if needed (second-chance clock).
                if inner.frames.len() >= self.config.frames {
                    loop {
                        let hand = inner.hand;
                        let victim = inner.clock[hand];
                        let f = inner.frames.get_mut(&victim).expect("clock entry");
                        if f.referenced {
                            f.referenced = false;
                            inner.hand = (hand + 1) % inner.clock.len();
                        } else {
                            inner.frames.remove(&victim);
                            inner.clock[hand] = key;
                            inner.hand = (hand + 1) % inner.clock.len();
                            // ordering: statistics counter (see above).
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                } else {
                    inner.clock.push(key);
                }
                inner.frames.insert(key, Frame { referenced: true });
                true
            }
        };
        if miss {
            // ordering: statistics counter (see above).
            self.misses.fetch_add(1, Ordering::Relaxed);
            if !self.config.io_latency.is_zero() {
                let _io = sli_profiler::enter(Category::IoWait);
                // Simulated disk-read latency for the paper's experiments,
                // not a wait on another thread. sli-lint: allow(sleep)
                std::thread::sleep(self.config.io_latency);
            }
        } else {
            // ordering: statistics counter (see above).
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pre-warm a frame without charging a miss (loader paths).
    pub fn prewarm(&self, table: u32, page: u32) {
        if self.config.frames == usize::MAX {
            return;
        }
        let key = (table, page);
        let mut inner = self.inner.lock();
        if inner.frames.len() < self.config.frames && !inner.frames.contains_key(&key) {
            inner.clock.push(key);
            inner.frames.insert(key, Frame { referenced: true });
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferPoolStats {
        // ordering: relaxed loads — advisory snapshot of independent
        // counters.
        BufferPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &BufferPoolConfig {
        &self.config
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("frames", &self.config.frames)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(BufferPoolConfig {
            frames,
            io_latency: Duration::ZERO,
        })
    }

    #[test]
    fn all_in_memory_never_misses() {
        let p = BufferPool::new(BufferPoolConfig::all_in_memory());
        for i in 0..1000 {
            p.access(1, i);
        }
        let s = p.stats();
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, 1000);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let p = pool(16);
        p.access(1, 0);
        p.access(1, 0);
        p.access(1, 0);
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn working_set_larger_than_pool_evicts() {
        let p = pool(4);
        for round in 0..3 {
            for page in 0..8 {
                p.access(1, page);
            }
            let _ = round;
        }
        let s = p.stats();
        assert!(s.evictions > 0);
        assert!(s.misses > 8, "cyclic scan through a small pool thrashes");
    }

    #[test]
    fn prewarm_avoids_first_miss() {
        let p = pool(16);
        p.prewarm(1, 0);
        p.access(1, 0);
        let s = p.stats();
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn io_latency_is_charged_on_miss() {
        let p = BufferPool::new(BufferPoolConfig {
            frames: 4,
            io_latency: Duration::from_millis(5),
        });
        let t0 = std::time::Instant::now();
        p.access(1, 0); // miss
        assert!(t0.elapsed() >= Duration::from_millis(4));
        let t1 = std::time::Instant::now();
        p.access(1, 0); // hit
        assert!(t1.elapsed() < Duration::from_millis(4));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let p = std::sync::Arc::new(pool(32));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let p = std::sync::Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    p.access(t % 2, i % 64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = p.stats();
        assert_eq!(s.hits + s.misses, 8000);
    }
}
