//! Primary and secondary indexes.
//!
//! Keys are `u64` throughout: workloads pack composite keys (e.g. TPC-C's
//! `(warehouse, district, order)`) into 64 bits with fixed-width fields, so
//! ordered scans over packed prefixes work naturally on the
//! [`OrderedIndex`]'s BTree.

use std::collections::{BTreeMap, HashMap};

use sli_latch::RwLatch;
use sli_profiler::Component;

use crate::page::Rid;

const SHARD_COUNT: usize = 64;

fn shard_of(key: u64) -> usize {
    // SplitMix-style scramble so sequential keys spread across shards.
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (z as usize) & (SHARD_COUNT - 1)
}

struct Shard<T> {
    latch: RwLatch,
    map: std::cell::UnsafeCell<T>,
}

// SAFETY: `map` is only accessed under `latch`.
unsafe impl<T: Send> Send for Shard<T> {}
// SAFETY: shared references only touch `map` under `latch` (readers take
// the shared side, writers the exclusive side).
unsafe impl<T: Send> Sync for Shard<T> {}

impl<T: Default> Shard<T> {
    fn new() -> Self {
        Shard {
            latch: RwLatch::new(Component::Storage),
            map: std::cell::UnsafeCell::new(T::default()),
        }
    }

    fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let _g = self.latch.read();
        // SAFETY: shared latch held.
        f(unsafe { &*self.map.get() })
    }

    fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let _g = self.latch.write();
        // SAFETY: exclusive latch held.
        f(unsafe { &mut *self.map.get() })
    }
}

/// A sharded hash index: `u64` key to [`Rid`]. The default primary index of
/// every table.
pub struct HashIndex {
    shards: Vec<Shard<HashMap<u64, Rid>>>,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        HashIndex {
            shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<Rid> {
        self.shards[shard_of(key)].read(|m| m.get(&key).copied())
    }

    /// Insert or replace; returns the previous RID if any.
    pub fn insert(&self, key: u64, rid: Rid) -> Option<Rid> {
        self.shards[shard_of(key)].write(|m| m.insert(key, rid))
    }

    /// Remove; returns the previous RID if any.
    pub fn remove(&self, key: u64) -> Option<Rid> {
        self.shards[shard_of(key)].write(|m| m.remove(&key))
    }

    /// Number of entries (diagnostics; latches every shard).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read(|m| m.len())).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every `(key, rid)` entry. Shard-by-shard under the shard
    /// latches; iteration order is unspecified (HashMap order within a
    /// shard), so consumers needing a stable digest must combine entries
    /// order-independently. Verification/recovery path, not transactional.
    pub fn for_each(&self, mut visit: impl FnMut(u64, Rid)) {
        for shard in &self.shards {
            shard.read(|m| {
                for (k, v) in m.iter() {
                    visit(*k, *v);
                }
            });
        }
    }
}

impl Default for HashIndex {
    fn default() -> Self {
        Self::new()
    }
}

/// An ordered secondary index supporting range scans over packed keys.
/// Single BTree under one reader-writer latch — matching the centralized
/// B-tree root behaviour of the original engine.
pub struct OrderedIndex {
    inner: Shard<BTreeMap<u64, Rid>>,
}

impl OrderedIndex {
    /// Empty index.
    pub fn new() -> Self {
        OrderedIndex {
            inner: Shard::new(),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<Rid> {
        self.inner.read(|m| m.get(&key).copied())
    }

    /// Insert or replace.
    pub fn insert(&self, key: u64, rid: Rid) -> Option<Rid> {
        self.inner.write(|m| m.insert(key, rid))
    }

    /// Remove.
    pub fn remove(&self, key: u64) -> Option<Rid> {
        self.inner.write(|m| m.remove(&key))
    }

    /// Collect `(key, rid)` pairs in `[lo, hi]`, capped at `limit`.
    pub fn range(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Rid)> {
        self.inner.read(|m| {
            m.range(lo..=hi)
                .take(limit)
                .map(|(k, v)| (*k, *v))
                .collect()
        })
    }

    /// Last `(key, rid)` at or below `hi` within `[lo, hi]` (e.g. "newest
    /// order for this customer").
    pub fn last_in(&self, lo: u64, hi: u64) -> Option<(u64, Rid)> {
        self.inner
            .read(|m| m.range(lo..=hi).next_back().map(|(k, v)| (*k, *v)))
    }

    /// First `(key, rid)` at or above `lo` within `[lo, hi]` (e.g. "oldest
    /// undelivered order").
    pub fn first_in(&self, lo: u64, hi: u64) -> Option<(u64, Rid)> {
        self.inner
            .read(|m| m.range(lo..=hi).next().map(|(k, v)| (*k, *v)))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.read(|m| m.len())
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every `(key, rid)` entry in key order under the latch.
    /// Verification/recovery path, not transactional.
    pub fn for_each(&self, mut visit: impl FnMut(u64, Rid)) {
        self.inner.read(|m| {
            for (k, v) in m.iter() {
                visit(*k, *v);
            }
        });
    }
}

impl Default for OrderedIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_crud() {
        let idx = HashIndex::new();
        assert!(idx.get(5).is_none());
        assert!(idx.insert(5, Rid::new(1, 2)).is_none());
        assert_eq!(idx.get(5), Some(Rid::new(1, 2)));
        assert_eq!(idx.insert(5, Rid::new(3, 4)), Some(Rid::new(1, 2)));
        assert_eq!(idx.remove(5), Some(Rid::new(3, 4)));
        assert!(idx.is_empty());
    }

    #[test]
    fn hash_index_concurrent_distinct_keys() {
        let idx = std::sync::Arc::new(HashIndex::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let idx = std::sync::Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let k = t * 1000 + i;
                    idx.insert(k, Rid::new(t as u32, i as u16));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 8000);
        assert_eq!(idx.get(3500), Some(Rid::new(3, 500)));
    }

    #[test]
    fn ordered_range_and_endpoints() {
        let idx = OrderedIndex::new();
        for k in [10u64, 20, 30, 40, 50] {
            idx.insert(k, Rid::new(k as u32, 0));
        }
        let hits = idx.range(15, 45, 10);
        assert_eq!(
            hits.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![20, 30, 40]
        );
        assert_eq!(idx.range(15, 45, 2).len(), 2, "limit respected");
        assert_eq!(idx.last_in(0, 100).unwrap().0, 50);
        assert_eq!(idx.first_in(25, 100).unwrap().0, 30);
        assert!(idx.first_in(51, 100).is_none());
    }

    #[test]
    fn ordered_remove() {
        let idx = OrderedIndex::new();
        idx.insert(1, Rid::new(0, 0));
        assert_eq!(idx.remove(1), Some(Rid::new(0, 0)));
        assert!(idx.is_empty());
    }

    #[test]
    fn for_each_visits_every_entry() {
        let hash = HashIndex::new();
        let ordered = OrderedIndex::new();
        for k in 0..500u64 {
            hash.insert(k, Rid::new(k as u32, 0));
            ordered.insert(k, Rid::new(k as u32, 0));
        }
        let mut sum = 0u64;
        let mut n = 0usize;
        hash.for_each(|k, rid| {
            sum += k;
            assert_eq!(rid.page as u64, k);
            n += 1;
        });
        assert_eq!((n, sum), (500, (0..500).sum()));
        // Ordered visits in key order.
        let mut keys = Vec::new();
        ordered.for_each(|k, _| keys.push(k));
        assert_eq!(keys, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn shard_spread_is_reasonable() {
        let mut counts = [0usize; SHARD_COUNT];
        for k in 0..10_000u64 {
            counts[shard_of(k)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 3, "shard imbalance: min={min} max={max}");
    }
}
