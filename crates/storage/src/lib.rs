//! # sli-storage — heap tables, indexes, and simulated I/O
//!
//! The storage substrate underneath the SLI engine: slotted pages grouped
//! into heap tables, sharded hash primary indexes plus ordered secondary
//! indexes, and a buffer-pool *residency simulator* that charges a
//! configurable penalty for page misses.
//!
//! The paper stores its database on an in-memory filesystem and modifies
//! Shore to "impose a 6 msec penalty for each I/O operation", simulating "a
//! high-end disk array having many spindles, such that all requests can
//! proceed in parallel but must each still pay the cost of a disk seek"
//! (Section 5.2). [`BufferPool`] implements exactly that model: data always
//! lives in memory; misses merely cost time.

mod bufferpool;
mod heap;
mod index;
mod page;
mod version;

pub use bufferpool::{BufferPool, BufferPoolConfig, BufferPoolStats};
pub use heap::HeapTable;
pub use index::{HashIndex, OrderedIndex};
pub use page::{Rid, SlottedPage, SLOTS_PER_PAGE};
pub use version::{Observation, Provisional, Version, VersionChain, BASE_TS, NOTHING_SEEN};
