//! Heap tables: growable collections of latched slotted pages.

use std::sync::atomic::{AtomicU32, Ordering};

use bytes::Bytes;
use sli_latch::Latched;
use sli_profiler::Component;

use crate::page::{Rid, SlottedPage, SLOTS_PER_PAGE};

/// A heap table. Pages are individually latched (`Latched<SlottedPage>`),
/// and the page directory grows under a reader-writer latch so readers of
/// existing pages never contend with growth.
pub struct HeapTable {
    /// Page directory: append-only, pages never deallocated. Readers of
    /// existing pages take the directory latch shared; growth takes it
    /// exclusive. Pages are boxed so directory growth moves pointers, not
    /// whole slotted pages.
    #[allow(clippy::vec_box)]
    dir: parking_lot::RwLock<Vec<Box<Latched<SlottedPage>>>>,
    /// Hint: first page that might have free slots.
    insert_hint: AtomicU32,
    live_records: AtomicU32,
}

impl HeapTable {
    /// Create an empty heap.
    pub fn new() -> Self {
        HeapTable {
            dir: parking_lot::RwLock::new(Vec::new()),
            insert_hint: AtomicU32::new(0),
            live_records: AtomicU32::new(0),
        }
    }

    /// Number of pages allocated.
    pub fn page_count(&self) -> u32 {
        self.dir.read().len() as u32
    }

    /// Number of live records.
    pub fn record_count(&self) -> u32 {
        // ordering: advisory count; exactness only matters in quiescent
        // tests, where joins order the memory.
        self.live_records.load(Ordering::Relaxed)
    }

    /// Insert a record, returning its RID.
    pub fn insert(&self, data: Bytes) -> Rid {
        loop {
            // ordering: the hint is a best-effort scan cursor — a stale
            // value only costs a longer scan, never correctness.
            let hint = self.insert_hint.load(Ordering::Relaxed);
            {
                let dir = self.dir.read();
                for (i, page) in dir.iter().enumerate().skip(hint as usize) {
                    let mut p = page.lock();
                    if let Some(slot) = p.insert(data.clone()) {
                        // ordering: advisory counter and hint (see above).
                        self.live_records.fetch_add(1, Ordering::Relaxed);
                        if p.is_full() {
                            // ordering: advisory hint (see above).
                            self.insert_hint.fetch_max(i as u32 + 1, Ordering::Relaxed);
                        }
                        return Rid::new(i as u32, slot);
                    }
                }
            }
            // All pages from the hint on are full: grow.
            let mut dir = self.dir.write();
            // Another inserter may have grown while we waited; the loop
            // re-scans from the hint either way.
            dir.push(Box::new(Latched::new(
                Component::Storage,
                SlottedPage::new(),
            )));
        }
    }

    /// Insert at a *specific* RID (undo of a delete, or redo of an insert
    /// during recovery). The page must exist (see [`Self::ensure_page`]).
    /// Overwrites and returns whatever the slot held; idempotent with
    /// respect to the live-record count.
    pub fn restore(&self, rid: Rid, data: Bytes) -> Option<Bytes> {
        let dir = self.dir.read();
        let mut p = dir[rid.page as usize].lock();
        let prev = p.restore(rid.slot, data);
        drop(p);
        if prev.is_none() {
            // ordering: advisory counter and hint (see `insert`).
            self.live_records.fetch_add(1, Ordering::Relaxed);
        }
        self.insert_hint.fetch_min(rid.page, Ordering::Relaxed); // ordering: see above.
        prev
    }

    /// Grow the directory until page `page` exists. Recovery replays
    /// records at the exact RIDs the log recorded; pages must exist
    /// before `restore` can place records on them.
    pub fn ensure_page(&self, page: u32) {
        {
            let dir = self.dir.read();
            if (dir.len() as u32) > page {
                return;
            }
        }
        let mut dir = self.dir.write();
        while (dir.len() as u32) <= page {
            dir.push(Box::new(Latched::new(
                Component::Storage,
                SlottedPage::new(),
            )));
        }
    }

    /// Read the record at `rid`.
    pub fn read(&self, rid: Rid) -> Option<Bytes> {
        let dir = self.dir.read();
        let page = dir.get(rid.page as usize)?;
        let p = page.lock();
        p.read(rid.slot)
    }

    /// Overwrite the record at `rid`, returning the before image.
    pub fn update(&self, rid: Rid, data: Bytes) -> Option<Bytes> {
        let dir = self.dir.read();
        let page = dir.get(rid.page as usize)?;
        let mut p = page.lock();
        p.update(rid.slot, data)
    }

    /// Delete the record at `rid`, returning the before image.
    pub fn delete(&self, rid: Rid) -> Option<Bytes> {
        let dir = self.dir.read();
        let page = dir.get(rid.page as usize)?;
        let mut p = page.lock();
        let before = p.delete(rid.slot)?;
        drop(p);
        // ordering: advisory counter and hint (see `insert`).
        self.live_records.fetch_sub(1, Ordering::Relaxed);
        self.insert_hint.fetch_min(rid.page, Ordering::Relaxed); // ordering: see above.
        Some(before)
    }

    /// Visit every live record (loader/verification paths; not
    /// transactional).
    pub fn scan(&self, mut visit: impl FnMut(Rid, &Bytes)) {
        let dir = self.dir.read();
        for (i, page) in dir.iter().enumerate() {
            let p = page.lock();
            for (slot, data) in p.iter() {
                visit(Rid::new(i as u32, slot), data);
            }
        }
    }

    /// Expected page of the `n`-th sequentially inserted record (loader
    /// convenience: bulk loads fill pages densely in order).
    pub fn page_of_nth(n: u64) -> u32 {
        (n / SLOTS_PER_PAGE as u64) as u32
    }
}

impl Default for HeapTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HeapTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapTable")
            .field("pages", &self.page_count())
            .field("records", &self.record_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_fill_pages_sequentially() {
        let h = HeapTable::new();
        for i in 0..(SLOTS_PER_PAGE * 2 + 1) {
            let rid = h.insert(Bytes::from(i.to_le_bytes().to_vec()));
            assert_eq!(rid.page, HeapTable::page_of_nth(i as u64));
        }
        assert_eq!(h.page_count(), 3);
        assert_eq!(h.record_count() as usize, SLOTS_PER_PAGE * 2 + 1);
    }

    #[test]
    fn read_update_delete_roundtrip() {
        let h = HeapTable::new();
        let rid = h.insert(Bytes::from_static(b"v1"));
        assert_eq!(&h.read(rid).unwrap()[..], b"v1");
        let before = h.update(rid, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(&before[..], b"v1");
        assert_eq!(&h.read(rid).unwrap()[..], b"v2");
        let before = h.delete(rid).unwrap();
        assert_eq!(&before[..], b"v2");
        assert!(h.read(rid).is_none());
    }

    #[test]
    fn restore_after_delete() {
        let h = HeapTable::new();
        let rid = h.insert(Bytes::from_static(b"v"));
        h.delete(rid).unwrap();
        assert_eq!(h.restore(rid, Bytes::from_static(b"v")), None);
        assert_eq!(&h.read(rid).unwrap()[..], b"v");
        assert_eq!(h.record_count(), 1);
        // Redo idempotence: restoring again overwrites in place and the
        // record count stays exact.
        let prev = h.restore(rid, Bytes::from_static(b"w")).unwrap();
        assert_eq!(&prev[..], b"v");
        assert_eq!(h.record_count(), 1);
    }

    #[test]
    fn ensure_page_grows_to_cover_arbitrary_rids() {
        let h = HeapTable::new();
        assert_eq!(h.page_count(), 0);
        h.ensure_page(3);
        assert_eq!(h.page_count(), 4);
        // Idempotent and never shrinks.
        h.ensure_page(1);
        assert_eq!(h.page_count(), 4);
        // Restore can now place a record at an exact RID on a fresh page.
        let rid = Rid::new(3, 9);
        assert_eq!(h.restore(rid, Bytes::from_static(b"r")), None);
        assert_eq!(&h.read(rid).unwrap()[..], b"r");
        assert_eq!(h.record_count(), 1);
    }

    #[test]
    fn out_of_range_rids_are_none() {
        let h = HeapTable::new();
        assert!(h.read(Rid::new(5, 0)).is_none());
        assert!(h.update(Rid::new(5, 0), Bytes::new()).is_none());
        assert!(h.delete(Rid::new(5, 0)).is_none());
    }

    #[test]
    fn scan_sees_all_records() {
        let h = HeapTable::new();
        let n = SLOTS_PER_PAGE + 7;
        for i in 0..n {
            h.insert(Bytes::from(vec![i as u8]));
        }
        let mut seen = 0;
        h.scan(|_, _| seen += 1);
        assert_eq!(seen, n);
    }

    #[test]
    fn concurrent_inserts_allocate_distinct_rids() {
        let h = std::sync::Arc::new(HeapTable::new());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                (0..500)
                    .map(|i| h.insert(Bytes::from(vec![t, i as u8])))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Rid> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let total = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), total, "duplicate RIDs handed out");
        assert_eq!(h.record_count() as usize, total);
    }
}
