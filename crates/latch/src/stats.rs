//! Per-latch acquisition counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lifetime counters for a single latch: total acquisitions and how many of
/// them contended. The ratio is the raw signal behind the paper's "hot lock"
/// criterion ("tracking what fraction of the most recent several acquires
/// encountered latch contention", Section 4.2) — the lock manager keeps its
/// own *windowed* version per lock head; these totals are for diagnostics
/// and tests.
#[derive(Debug, Default)]
pub struct LatchStats {
    acquires: AtomicU64,
    contended: AtomicU64,
    /// Adaptive-spin iterations burned by contended acquisitions (busy
    /// CPU while waiting).
    spins: AtomicU64,
    /// Times a contended acquisition parked its thread (descheduled,
    /// woken by the releasing thread).
    parks: AtomicU64,
}

impl LatchStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one acquisition and whether it contended.
    #[inline]
    pub fn record(&self, contended: bool) {
        // ordering: monotonic statistics counters; readers tolerate
        // staleness and nothing is published through them.
        self.acquires.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed); // ordering: see above.
        }
    }

    /// Record how a contended acquisition waited: spin iterations vs real
    /// parks. Distinguishes the two halves of the `LatchWait` profiler
    /// attribution (spinning burns the core; parking cedes it).
    #[inline]
    pub fn record_wait(&self, spins: u32, parks: u32) {
        // ordering: statistics counters (see `record`).
        if spins > 0 {
            self.spins.fetch_add(u64::from(spins), Ordering::Relaxed); // ordering: see above.
        }
        if parks > 0 {
            self.parks.fetch_add(u64::from(parks), Ordering::Relaxed); // ordering: see above.
        }
    }

    /// Total acquisitions.
    pub fn acquires(&self) -> u64 {
        // ordering: advisory read of a statistics counter.
        self.acquires.load(Ordering::Relaxed)
    }

    /// Acquisitions that hit the contended path.
    pub fn contended(&self) -> u64 {
        // ordering: advisory read of a statistics counter.
        self.contended.load(Ordering::Relaxed)
    }

    /// Spin iterations burned by contended acquisitions.
    pub fn spins(&self) -> u64 {
        // ordering: advisory read of a statistics counter.
        self.spins.load(Ordering::Relaxed)
    }

    /// Thread parks performed by contended acquisitions.
    pub fn parks(&self) -> u64 {
        // ordering: advisory read of a statistics counter.
        self.parks.load(Ordering::Relaxed)
    }

    /// Lifetime contention ratio in `[0, 1]`; 0 when never acquired.
    pub fn contention_ratio(&self) -> f64 {
        let a = self.acquires();
        if a == 0 {
            0.0
        } else {
            self.contended() as f64 / a as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_acquires() {
        let s = LatchStats::new();
        assert_eq!(s.contention_ratio(), 0.0);
    }

    #[test]
    fn ratio_reflects_recorded_mix() {
        let s = LatchStats::new();
        s.record(false);
        s.record(true);
        s.record(true);
        s.record(false);
        assert_eq!(s.acquires(), 4);
        assert_eq!(s.contended(), 2);
        assert!((s.contention_ratio() - 0.5).abs() < 1e-12);
    }
}
