//! Latch-protected data, mutex style.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use sli_profiler::Component;

use crate::raw::{Latch, LatchGuard};

/// A value protected by a [`Latch`], with RAII access that carries the
/// per-acquisition contention bit. This is the building block for the lock
/// manager's bucket chains and lock-head request queues, where the paper's
/// hot-lock detector needs to know whether *this particular* acquisition
/// contended.
pub struct Latched<T> {
    latch: Latch,
    value: UnsafeCell<T>,
}

// SAFETY: access to `value` is serialized by `latch`.
unsafe impl<T: Send> Send for Latched<T> {}
// SAFETY: shared references only hand out `value` under the latch.
unsafe impl<T: Send> Sync for Latched<T> {}

impl<T> Latched<T> {
    /// Wrap `value` behind a latch charged to `component`.
    pub fn new(component: Component, value: T) -> Self {
        Latched {
            latch: Latch::new(component),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the latch and return an accessor guard.
    #[inline]
    pub fn lock(&self) -> LatchedGuard<'_, T> {
        let guard = self.latch.acquire();
        LatchedGuard { cell: self, guard }
    }

    /// Try to acquire without waiting.
    #[inline]
    pub fn try_lock(&self) -> Option<LatchedGuard<'_, T>> {
        let guard = self.latch.try_acquire()?;
        Some(LatchedGuard { cell: self, guard })
    }

    /// The underlying latch (for stats).
    pub fn latch(&self) -> &Latch {
        &self.latch
    }

    /// Mutable access without locking; requires exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Latched<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Latched")
            .field("latch", &self.latch)
            .finish_non_exhaustive()
    }
}

/// RAII accessor for a [`Latched`] value.
pub struct LatchedGuard<'a, T> {
    cell: &'a Latched<T>,
    guard: LatchGuard<'a>,
}

impl<T> LatchedGuard<'_, T> {
    /// Whether acquiring the latch had to wait — the raw signal behind the
    /// paper's "hot lock" criterion.
    #[inline]
    pub fn was_contended(&self) -> bool {
        self.guard.was_contended()
    }
}

impl<T> Deref for LatchedGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the latch guard serializes access.
        unsafe { &*self.cell.value.get() }
    }
}

impl<T> DerefMut for LatchedGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the latch guard serializes access.
        unsafe { &mut *self.cell.value.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn serialized_mutation_is_consistent() {
        let cell = Arc::new(Latched::new(Component::Other, 0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cell = Arc::clone(&cell);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    *cell.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.lock(), 40_000);
    }

    #[test]
    fn try_lock_respects_holder() {
        let cell = Latched::new(Component::Other, vec![1, 2, 3]);
        let g = cell.lock();
        assert!(cell.try_lock().is_none());
        drop(g);
        assert_eq!(cell.try_lock().unwrap().len(), 3);
    }

    #[test]
    fn get_mut_bypasses_latch() {
        let mut cell = Latched::new(Component::Other, 7);
        *cell.get_mut() = 9;
        assert_eq!(*cell.lock(), 9);
    }
}
