//! Reader-writer latch.

use parking_lot::lock_api::RawRwLock as RawRwLockApi;
use parking_lot::RawRwLock;
use sli_profiler::{Category, Component};

use crate::stats::LatchStats;

/// A reader-writer latch with the same contended-path accounting as
/// [`crate::Latch`]. Used where Shore-MT applies "less often, reader-writer
/// locking" for critical sections (Section 2) — e.g. index shards and the
/// buffer-pool residency table.
pub struct RwLatch {
    raw: RawRwLock,
    component: Component,
    stats: LatchStats,
}

impl RwLatch {
    /// Create a reader-writer latch charged to `component`.
    pub fn new(component: Component) -> Self {
        RwLatch {
            raw: RawRwLock::INIT,
            component,
            stats: LatchStats::new(),
        }
    }

    /// Acquire in shared mode.
    #[inline]
    pub fn read(&self) -> RwReadGuard<'_> {
        if self.raw.try_lock_shared() {
            self.stats.record(false);
            return RwReadGuard {
                latch: self,
                contended: false,
            };
        }
        self.stats.record(true);
        let profile;
        {
            let _wait = sli_profiler::enter(Category::LatchWait(self.component));
            profile = self.raw.lock_shared_profiled();
        }
        self.stats.record_wait(profile.spins, profile.parks);
        RwReadGuard {
            latch: self,
            contended: true,
        }
    }

    /// Acquire in exclusive mode.
    #[inline]
    pub fn write(&self) -> RwWriteGuard<'_> {
        if self.raw.try_lock_exclusive() {
            self.stats.record(false);
            return RwWriteGuard {
                latch: self,
                contended: false,
            };
        }
        self.stats.record(true);
        let profile;
        {
            let _wait = sli_profiler::enter(Category::LatchWait(self.component));
            profile = self.raw.lock_exclusive_profiled();
        }
        self.stats.record_wait(profile.spins, profile.parks);
        RwWriteGuard {
            latch: self,
            contended: true,
        }
    }

    /// Lifetime acquisition/contention counters.
    pub fn stats(&self) -> &LatchStats {
        &self.stats
    }
}

impl std::fmt::Debug for RwLatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLatch")
            .field("component", &self.component)
            .field("acquires", &self.stats.acquires())
            .finish()
    }
}

/// Shared-mode guard.
pub struct RwReadGuard<'a> {
    latch: &'a RwLatch,
    contended: bool,
}

impl RwReadGuard<'_> {
    /// Whether this acquisition had to wait.
    pub fn was_contended(&self) -> bool {
        self.contended
    }
}

impl Drop for RwReadGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: guard proves shared ownership.
        unsafe { self.latch.raw.unlock_shared() };
    }
}

/// Exclusive-mode guard.
pub struct RwWriteGuard<'a> {
    latch: &'a RwLatch,
    contended: bool,
}

impl RwWriteGuard<'_> {
    /// Whether this acquisition had to wait.
    pub fn was_contended(&self) -> bool {
        self.contended
    }
}

impl Drop for RwWriteGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: guard proves exclusive ownership.
        unsafe { self.latch.raw.unlock_exclusive() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn many_concurrent_readers() {
        let latch = Arc::new(RwLatch::new(Component::Storage));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let latch = Arc::clone(&latch);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _g = latch.read();
                    n += 1;
                }
                n
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
    }

    #[test]
    fn write_guard_blocks_second_writer() {
        let latch = Arc::new(RwLatch::new(Component::Storage));
        let w = latch.write();
        let l2 = Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            let w2 = l2.write();
            w2.was_contended()
        });
        std::thread::sleep(std::time::Duration::from_millis(15));
        drop(w);
        assert!(h.join().unwrap());
    }
}
