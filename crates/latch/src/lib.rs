//! Latch substrate.
//!
//! A database engine distinguishes *locks* (logical, long-lived, deadlock
//! detected) from *latches* (physical, short critical sections, acquired far
//! more often — the paper cites ~100 latch acquisitions for a 4-6 row TPC-C
//! Payment transaction). This crate provides the latches used by every other
//! component: a mutual-exclusion [`Latch`] and a reader-writer [`RwLatch`],
//! both built as try-fast-path / contended-slow-path wrappers so that each
//! acquisition reports whether it *contended*.
//!
//! The contention signal serves two masters:
//!
//! 1. the [`sli_profiler`] tally — contended waits are charged to
//!    `LatchWait(component)`, which is exactly the "contention" series of the
//!    paper's Figures 1/6/10; and
//! 2. SLI's hot-lock detector — the lock manager feeds each lock-head
//!    latch's per-acquire contention bit into a sliding window that decides
//!    whether a lock is "hot" (Section 4.2, criterion 2).

mod cell;
mod raw;
mod rw;
mod stats;

pub use cell::{Latched, LatchedGuard};
pub use raw::{Latch, LatchGuard};
pub use rw::{RwLatch, RwReadGuard, RwWriteGuard};
pub use stats::LatchStats;

// The waiter subsystem behind every latch: global park/unpark counters,
// re-exported so the harness can report spins-vs-parks per measurement
// window without depending on the vendored crate directly.
pub use parking_lot::parking::ParkingStats;
pub use parking_lot::parking_stats;

#[cfg(test)]
mod tests {
    use super::*;
    use sli_profiler::Component;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn latch_provides_mutual_exclusion() {
        let latch = Arc::new(Latch::new(Component::Other));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let latch = Arc::clone(&latch);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let _g = latch.acquire();
                    // Non-atomic-looking increment under the latch:
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn uncontended_acquire_reports_no_contention() {
        let latch = Latch::new(Component::LockManager);
        let g = latch.acquire();
        assert!(!g.was_contended());
        drop(g);
        assert_eq!(latch.stats().acquires(), 1);
        assert_eq!(latch.stats().contended(), 0);
    }

    #[test]
    fn contended_acquire_is_detected() {
        let latch = Arc::new(Latch::new(Component::LockManager));
        let g = latch.acquire();
        let l2 = Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            let g2 = l2.acquire();
            g2.was_contended()
        });
        // Give the thread time to hit the contended path.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(g);
        assert!(h.join().unwrap());
        assert!(latch.stats().contended() >= 1);
    }

    #[test]
    fn long_contended_wait_parks_instead_of_spinning() {
        // Holder keeps the latch far past any spin budget: the waiter must
        // park (descheduled, woken by the release), and the latch's stats
        // must record the spin/park split of that wait.
        let latch = Arc::new(Latch::new(Component::LockManager));
        let g = latch.acquire();
        let l2 = Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            let _g = l2.acquire();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(g);
        h.join().unwrap();
        assert!(latch.stats().contended() >= 1);
        assert!(
            latch.stats().parks() >= 1,
            "a 50ms wait must park, not spin (spins={} parks={})",
            latch.stats().spins(),
            latch.stats().parks()
        );
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let latch = Latch::new(Component::Other);
        let g = latch.acquire();
        assert!(latch.try_acquire().is_none());
        drop(g);
        assert!(latch.try_acquire().is_some());
    }

    #[test]
    fn rwlatch_allows_concurrent_readers() {
        let latch = Arc::new(RwLatch::new(Component::Storage));
        let r1 = latch.read();
        let r2 = latch.read();
        assert!(!r1.was_contended());
        assert!(!r2.was_contended());
        drop(r1);
        drop(r2);
        let w = latch.write();
        drop(w);
    }

    #[test]
    fn rwlatch_writer_excludes_readers() {
        let latch = Arc::new(RwLatch::new(Component::Storage));
        let w = latch.write();
        let l2 = Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            let r = l2.read();
            r.was_contended()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(w);
        assert!(h.join().unwrap());
    }
}
