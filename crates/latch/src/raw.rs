//! Mutual-exclusion latch with a contention fast path.

use parking_lot::lock_api::RawMutex as RawMutexApi;
use parking_lot::RawMutex;
use sli_profiler::{Category, Component};

use crate::stats::LatchStats;

/// A short-term mutual-exclusion latch.
///
/// The fast path is a single `try_lock`; if it fails the acquisition is
/// *contended*: the waiter charges its wait time to
/// `Category::LatchWait(component)` and then falls back to parking_lot's
/// adaptive spin-then-park `lock`, which models the spin/block mix the paper
/// describes for Shore-MT latches.
pub struct Latch {
    raw: RawMutex,
    component: Component,
    stats: LatchStats,
}

impl Latch {
    /// Create a latch whose contended waits are attributed to `component`.
    pub fn new(component: Component) -> Self {
        Latch {
            raw: RawMutex::INIT,
            component,
            stats: LatchStats::new(),
        }
    }

    /// Acquire the latch, spinning/parking if necessary.
    #[inline]
    pub fn acquire(&self) -> LatchGuard<'_> {
        if self.raw.try_lock() {
            self.stats.record(false);
            return LatchGuard {
                latch: self,
                contended: false,
            };
        }
        // Contended slow path: adaptive spin, then queued parking. The
        // whole wait is charged to `LatchWait(component)`; the spin/park
        // split is recorded separately so reports can tell busy-waiting
        // from descheduled waiting.
        self.stats.record(true);
        let profile;
        {
            let _wait = sli_profiler::enter(Category::LatchWait(self.component));
            profile = self.raw.lock_profiled();
        }
        self.stats.record_wait(profile.spins, profile.parks);
        LatchGuard {
            latch: self,
            contended: true,
        }
    }

    /// Try to acquire without waiting.
    #[inline]
    pub fn try_acquire(&self) -> Option<LatchGuard<'_>> {
        if self.raw.try_lock() {
            self.stats.record(false);
            Some(LatchGuard {
                latch: self,
                contended: false,
            })
        } else {
            None
        }
    }

    /// Lifetime acquisition/contention counters for this latch.
    pub fn stats(&self) -> &LatchStats {
        &self.stats
    }

    /// The component charged for contended waits.
    pub fn component(&self) -> Component {
        self.component
    }
}

impl std::fmt::Debug for Latch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Latch")
            .field("component", &self.component)
            .field("acquires", &self.stats.acquires())
            .field("contended", &self.stats.contended())
            .finish()
    }
}

/// RAII guard; releases the latch on drop.
pub struct LatchGuard<'a> {
    latch: &'a Latch,
    contended: bool,
}

impl LatchGuard<'_> {
    /// Whether this acquisition had to wait. Feeds SLI's per-lock hot
    /// tracker.
    #[inline]
    pub fn was_contended(&self) -> bool {
        self.contended
    }
}

impl Drop for LatchGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: the guard's existence proves this thread holds the latch.
        unsafe { self.latch.raw.unlock() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guard_releases_on_drop() {
        let latch = Latch::new(Component::Other);
        {
            let _g = latch.acquire();
        }
        let _g2 = latch.acquire();
    }

    #[test]
    fn stats_count_every_acquire() {
        let latch = Latch::new(Component::Other);
        for _ in 0..5 {
            let _g = latch.acquire();
        }
        let _ = latch.try_acquire();
        assert_eq!(latch.stats().acquires(), 6);
    }

    #[test]
    fn contended_wait_charges_profiler() {
        sli_profiler::reset();
        let latch = Arc::new(Latch::new(Component::LockManager));
        let g = latch.acquire();
        let l2 = Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            sli_profiler::reset();
            let _g = l2.acquire();
            sli_profiler::take_tally()
        });
        std::thread::sleep(std::time::Duration::from_millis(15));
        drop(g);
        let tally = h.join().unwrap();
        let waited = tally.get(Category::LatchWait(Component::LockManager));
        assert!(waited > 5_000_000, "waited = {waited}ns");
    }
}
