//! Banking scenario: TPC-B deposits/withdrawals with an auditable invariant.
//!
//! Every transaction moves the same delta through account, teller, and
//! branch; the sums of the three balance columns must therefore stay equal
//! no matter how many concurrent sessions hammer the bank — with or without
//! SLI. This example runs a concurrent burst and then audits the books.
//!
//! ```text
//! cargo run --release --example banking_tpcb
//! ```

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sli::engine::{Database, DatabaseConfig};
use sli::workloads::tpcb::TpcB;
use sli::workloads::Outcome;

fn main() {
    let mut config = DatabaseConfig::with_policy(sli::engine::PolicyKind::PaperSli).in_memory();
    config.row_work_ns = 500;
    let db = Database::open(config);
    let bank = TpcB::load(&db, 16, 1_000);
    println!(
        "bank loaded: {} branches, {} tellers, {} accounts",
        bank.branches,
        bank.branches * sli::workloads::tpcb::TELLERS_PER_BRANCH,
        bank.branches * bank.accounts_per_branch
    );

    let threads = 8;
    let per_thread = 2_000;
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        let bank = Arc::clone(&bank);
        handles.push(std::thread::spawn(move || {
            let session = db.session();
            let mut rng = SmallRng::seed_from_u64(t as u64);
            let mut commits = 0u64;
            let mut aborts = 0u64;
            for _ in 0..per_thread {
                match bank.account_update(&session, &mut rng) {
                    Outcome::Commit => commits += 1,
                    Outcome::SysAbort => aborts += 1,
                    Outcome::UserFail => unreachable!("TPC-B has no user failures"),
                }
            }
            (commits, aborts)
        }));
    }
    let mut commits = 0;
    let mut aborts = 0;
    for h in handles {
        let (c, a) = h.join().unwrap();
        commits += c;
        aborts += a;
    }
    println!("{commits} deposits/withdrawals committed ({aborts} deadlock victims not retried)");

    let (branch_sum, teller_sum, account_sum) = bank.balance_sums(&db);
    println!("audit: branches={branch_sum} tellers={teller_sum} accounts={account_sum}");
    assert_eq!(branch_sum, teller_sum, "branch vs teller books diverged!");
    assert_eq!(branch_sum, account_sum, "branch vs account books diverged!");
    println!("books balance. SLI stats: {:?}", db.lock_stats());
}
