//! Quickstart: open a database, run transactions, watch SLI work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sli::engine::{Database, DatabaseConfig};

fn main() {
    // A database with Speculative Lock Inheritance enabled (the default
    // configuration; use `DatabaseConfig::with_policy(sli::engine::PolicyKind::Baseline)` for the unmodified
    // lock manager).
    let db =
        Database::open(DatabaseConfig::with_policy(sli::engine::PolicyKind::PaperSli).in_memory());
    let accounts = db.create_table("accounts").expect("fresh database");

    // Load a few rows outside of any transaction.
    for id in 0..1000u64 {
        db.bulk_insert(accounts, id, None, &100u64.to_le_bytes());
    }

    // A session owns one lock-manager agent; SLI passes hot locks from each
    // committed transaction to the next one on the same session.
    let session = db.session();

    // Transfer 10 units from account 1 to account 2, transactionally.
    session
        .run(|txn| {
            txn.update_by_key(accounts, 1, |old| {
                let v = u64::from_le_bytes(old.try_into().unwrap());
                (v - 10).to_le_bytes().to_vec()
            })?;
            txn.update_by_key(accounts, 2, |old| {
                let v = u64::from_le_bytes(old.try_into().unwrap());
                (v + 10).to_le_bytes().to_vec()
            })?;
            Ok(())
        })
        .expect("transfer commits");

    let v1 = u64::from_le_bytes(db.peek(accounts, 1).unwrap()[..].try_into().unwrap());
    let v2 = u64::from_le_bytes(db.peek(accounts, 2).unwrap()[..].try_into().unwrap());
    println!("after transfer: account1={v1} account2={v2}");
    assert_eq!(v1 + v2, 200);

    // A failed transaction rolls back automatically.
    let result: Result<(), sli::engine::TxnError> = session.run(|txn| {
        txn.update_by_key(accounts, 1, |_| 0u64.to_le_bytes().to_vec())?;
        Err(txn.user_abort("changed my mind"))
    });
    assert!(result.is_err());
    let v1_after = u64::from_le_bytes(db.peek(accounts, 1).unwrap()[..].try_into().unwrap());
    assert_eq!(v1_after, v1, "rollback restored the balance");
    println!("rollback verified: account1 still {v1_after}");

    // Run a few hundred read transactions; under concurrent load the
    // database/table/page locks would heat up and start flowing from
    // transaction to transaction without touching the lock manager.
    for i in 0..300u64 {
        session
            .run(|txn| {
                txn.read_by_key(accounts, i % 1000)?;
                Ok(())
            })
            .unwrap();
    }
    let stats = db.lock_stats();
    println!(
        "lock manager: {} requests, {} cache hits, {} SLI reclaims, {} commits",
        stats.lock_requests, stats.cache_hits, stats.sli_reclaimed, stats.commits
    );
    println!(
        "inherited locks currently parked on this session: {}",
        session.inherited_locks()
    );
}
