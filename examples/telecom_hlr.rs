//! Telecom scenario: the workload the paper's introduction motivates.
//!
//! A Home Location Register (NDBB/TM1) serving very short transactions with
//! stringent latency requirements. This example loads the TM1 schema and
//! drives the full NDBB mix from many concurrent sessions, first on the
//! baseline lock manager, then with SLI — printing the throughput and the
//! fraction of CPU time burned contending in the lock manager.
//!
//! ```text
//! cargo run --release --example telecom_hlr
//! ```

use std::sync::Arc;
use std::time::Duration;

use sli::engine::{Database, DatabaseConfig};
use sli::harness::driver::{run_workload, RunConfig};
use sli::workloads::tm1::Tm1;

fn drive(label: &str, config: DatabaseConfig, agents: usize) {
    let db = Database::open(config);
    let tm1 = Tm1::load(&db, 50_000, 7);
    let mix = tm1.ndbb_mix();
    let cfg = RunConfig {
        agents,
        warmup: Duration::from_millis(200),
        measure: Duration::from_millis(500),
        seed: 1,
    };
    let r = run_workload(&db, &mix, &cfg);
    let (lm_work, lm_cont) = r.lockmgr_fractions();
    println!(
        "{label:>9}: {:>9.0} txn/s  (commit rate {:.1}%, lockmgr work {:.1}%, lockmgr contention {:.1}%)",
        r.attempts_per_sec,
        100.0 * r.commits as f64 / (r.commits + r.user_fails).max(1) as f64,
        lm_work * 100.0,
        lm_cont * 100.0,
    );
}

fn main() {
    let agents = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    println!("NDBB mix, {agents} concurrent sessions, 50k subscribers\n");
    let mut baseline = DatabaseConfig::with_policy(sli::engine::PolicyKind::Baseline).in_memory();
    baseline.row_work_ns = 800;
    let mut sli = DatabaseConfig::with_policy(sli::engine::PolicyKind::PaperSli).in_memory();
    sli.row_work_ns = 800;
    drive("baseline", baseline, agents);
    drive("SLI", sli, agents);
    let _ = Arc::new(());
    println!("\nSLI passes the hot database/table/page intent locks from");
    println!("transaction to transaction, so agents stop queueing on the");
    println!("lock heads' latches — the contention column collapses.");
}
