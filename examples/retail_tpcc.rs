//! Retail scenario: the TPC-C "small mix" the paper analyzes.
//!
//! Payment, New Order, and Order Status at 46.7/48.9/4.3 % — the three
//! short transactions that make up 92 % of the TPC-C workload and are the
//! ones exposed to lock-manager contention. Runs the mix on all cores and
//! prints per-transaction-type outcome counts plus SLI effectiveness.
//!
//! ```text
//! cargo run --release --example retail_tpcc
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sli::engine::{Database, DatabaseConfig};
use sli::workloads::tpcc::{TpcC, TpcCScale};
use sli::workloads::Outcome;

fn main() {
    let mut config = DatabaseConfig::with_policy(sli::engine::PolicyKind::PaperSli).in_memory();
    config.row_work_ns = 500;
    let db = Database::open(config);
    let scale = TpcCScale {
        warehouses: 8,
        customers_per_district: 300,
        items: 2_000,
        initial_orders_per_district: 100,
    };
    let t0 = Instant::now();
    let tpcc = TpcC::load(&db, scale, 99);
    println!(
        "TPC-C loaded in {:?}: {} warehouses, {} items",
        t0.elapsed(),
        scale.warehouses,
        scale.items
    );

    let mix = Arc::new(tpcc.small_mix());
    let names = mix.transaction_names();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        let mix = Arc::clone(&mix);
        handles.push(std::thread::spawn(move || {
            let session = db.session();
            let mut rng = SmallRng::seed_from_u64(t as u64);
            let mut counts = vec![[0u64; 3]; mix.len()]; // commit/fail/abort
            while Instant::now() < deadline {
                let (idx, outcome) = mix.run_one(&session, &mut rng);
                let slot = match outcome {
                    Outcome::Commit => 0,
                    Outcome::UserFail => 1,
                    Outcome::SysAbort => 2,
                };
                counts[idx][slot] += 1;
            }
            counts
        }));
    }
    let mut totals = vec![[0u64; 3]; names.len()];
    for h in handles {
        for (i, c) in h.join().unwrap().into_iter().enumerate() {
            for k in 0..3 {
                totals[i][k] += c[k];
            }
        }
    }
    println!(
        "\n{:>12} {:>10} {:>10} {:>10}",
        "txn", "commits", "fails", "aborts"
    );
    for (name, c) in names.iter().zip(&totals) {
        println!("{:>12} {:>10} {:>10} {:>10}", name, c[0], c[1], c[2]);
    }
    let stats = db.lock_stats();
    println!(
        "\nSLI: {} locks inherited, {} reclaimed (used), {} discarded, {} invalidated",
        stats.sli_inherited, stats.sli_reclaimed, stats.sli_discarded, stats.sli_invalidated
    );
    let grand: u64 = totals.iter().map(|c| c[0]).sum();
    println!("total committed: {grand} in 2s across {threads} sessions");
}
