//! A tour of the lock manager API itself — modes, hierarchy, upgrades,
//! deadlock detection, and the SLI lifecycle — without the engine on top.
//!
//! ```text
//! cargo run --release --example lock_manager_tour
//! ```

use std::sync::Arc;
use std::time::Duration;

use sli::core::{
    FastPathConfig, LockId, LockManager, LockManagerConfig, LockMode, PolicyKind, TableId,
    TxnLockState,
};

fn main() {
    println!("== 1. the mode lattice ==");
    for a in [
        LockMode::IS,
        LockMode::IX,
        LockMode::S,
        LockMode::SIX,
        LockMode::X,
    ] {
        let compat: Vec<String> = [
            LockMode::IS,
            LockMode::IX,
            LockMode::S,
            LockMode::SIX,
            LockMode::X,
        ]
        .iter()
        .filter(|b| a.compatible(**b))
        .map(|b| b.to_string())
        .collect();
        println!("  {a:>3} compatible with: {}", compat.join(" "));
    }
    println!("  sup(S, IX) = {}", LockMode::S.supremum(LockMode::IX));

    println!("\n== 2. automatic intention locks ==");
    // Grant-word fast path off for this tour: sections 3-4 narrate the SLI
    // hand-off, which needs every acquisition to be a queued (inheritable)
    // request. Section 6 tours the fast path itself.
    let mut cfg = LockManagerConfig::with_policy(PolicyKind::PaperSli);
    cfg.fastpath = FastPathConfig::disabled();
    let m = LockManager::new(cfg);
    let mut agent = m.register_agent().unwrap();
    let mut ts = TxnLockState::new(agent.slot());
    m.begin(&mut ts, &mut agent);
    let record = LockId::Record(TableId(1), 7, 3);
    m.lock(&mut ts, &mut agent, record, LockMode::X).unwrap();
    for id in [
        LockId::Database,
        LockId::Table(TableId(1)),
        LockId::Page(TableId(1), 7),
        record,
    ] {
        println!("  {id}: held {:?}", ts.held_mode(id).unwrap());
    }

    println!("\n== 3. SLI lifecycle ==");
    // Heat the high-level locks (normally latch contention does this).
    for id in [
        LockId::Database,
        LockId::Table(TableId(1)),
        LockId::Page(TableId(1), 7),
    ] {
        let head = m.head(id).unwrap();
        for _ in 0..16 {
            head.hot().record(true);
        }
    }
    // X on the record is NOT heritable (criterion 3); downgrade scenario:
    // commit and watch the shared-mode ancestors pass to the agent.
    m.end_txn(&mut ts, &mut agent, true);
    println!(
        "  after commit, inherited: {:?}",
        agent.inherited_ids().collect::<Vec<_>>()
    );
    let before = m.stats().snapshot();
    m.begin(&mut ts, &mut agent);
    m.lock(
        &mut ts,
        &mut agent,
        LockId::Record(TableId(1), 7, 4),
        LockMode::S,
    )
    .unwrap();
    let after = m.stats().snapshot();
    println!(
        "  next txn: {} locks reclaimed via CAS, {} fresh lock-manager requests",
        after.sli_reclaimed - before.sli_reclaimed,
        after.lock_requests - before.lock_requests
    );
    m.end_txn(&mut ts, &mut agent, true);

    println!("\n== 4. invalidation by a conflicting transaction ==");
    // The agent still holds inherited locks; an X on the table from another
    // agent invalidates them in passing, without blocking.
    let m2 = Arc::clone(&m);
    let handle = std::thread::spawn(move || {
        let mut a2 = m2.register_agent().unwrap();
        let mut t2 = TxnLockState::new(a2.slot());
        m2.begin(&mut t2, &mut a2);
        let t0 = std::time::Instant::now();
        m2.lock(&mut t2, &mut a2, LockId::Table(TableId(1)), LockMode::X)
            .unwrap();
        let waited = t0.elapsed();
        m2.end_txn(&mut t2, &mut a2, true);
        waited
    });
    let waited = handle.join().unwrap();
    println!("  table X acquired in {waited:?} (inherited locks invalidated, not waited on)");
    println!(
        "  invalidations so far: {}",
        m.stats().snapshot().sli_invalidated
    );

    println!("\n== 5. deadlock detection (Dreadlocks) ==");
    let mcfg =
        LockManagerConfig::with_policy(PolicyKind::Baseline).lock_timeout(Duration::from_secs(2));
    let dm = LockManager::new(mcfg);
    let a = LockId::Record(TableId(9), 0, 0);
    let b = LockId::Record(TableId(9), 0, 1);
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let spawn = |first: LockId, second: LockId| {
        let dm = Arc::clone(&dm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut ag = dm.register_agent().unwrap();
            let mut tx = TxnLockState::new(ag.slot());
            dm.begin(&mut tx, &mut ag);
            dm.lock(&mut tx, &mut ag, first, LockMode::X).unwrap();
            barrier.wait();
            let r = dm.lock(&mut tx, &mut ag, second, LockMode::X);
            dm.end_txn(&mut tx, &mut ag, r.is_ok());
            r
        })
    };
    let h1 = spawn(a, b);
    let h2 = spawn(b, a);
    let (r1, r2) = (h1.join().unwrap(), h2.join().unwrap());
    println!("  txn1: {r1:?}");
    println!("  txn2: {r2:?}");
    println!("  exactly one victim: {}", (r1.is_err() ^ r2.is_err()));
    m.retire_agent(&mut agent);

    println!("\n== 6. the grant word: latch-free compatible acquisitions ==");
    // Default config: group-compatible fresh acquires (IS/IX on ancestors,
    // S on records) are granted by one CAS on the head's packed word — no
    // latch, no LockRequest, no queue entry.
    let fm = LockManager::new(LockManagerConfig::with_policy(PolicyKind::Baseline));
    let mut fa = fm.register_agent().unwrap();
    let mut fts = TxnLockState::new(fa.slot());
    fm.begin(&mut fts, &mut fa);
    fm.lock(
        &mut fts,
        &mut fa,
        LockId::Record(TableId(1), 0, 0),
        LockMode::S,
    )
    .unwrap();
    let table_head = fm.head(LockId::Table(TableId(1))).unwrap();
    println!(
        "  4-level hierarchy held, {} of {} via the grant word",
        fts.fast_locks_held(),
        fts.locks_held()
    );
    println!(
        "  table head word: {:?}",
        table_head.grant_word().snapshot()
    );
    println!(
        "  queue entries on the table head: {} (empty: the word carries the count)",
        table_head.latch_untracked().reqs.len()
    );
    fm.end_txn(&mut fts, &mut fa, true);
    let snap = fm.stats().snapshot();
    println!(
        "  stats: {} fast grants, {} fallbacks, {} allocations",
        snap.fastpath_granted, snap.fastpath_fallbacks, snap.requests_allocated
    );
    fm.retire_agent(&mut fa);
}
