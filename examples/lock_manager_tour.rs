//! A tour of the lock manager API itself — modes, hierarchy, upgrades,
//! deadlock detection, and the SLI lifecycle — without the engine on top.
//!
//! ```text
//! cargo run --release --example lock_manager_tour
//! ```

use std::sync::Arc;
use std::time::Duration;

use sli::core::{
    LockId, LockManager, LockManagerConfig, LockMode, PolicyKind, TableId, TxnLockState,
};

fn main() {
    println!("== 1. the mode lattice ==");
    for a in [
        LockMode::IS,
        LockMode::IX,
        LockMode::S,
        LockMode::SIX,
        LockMode::X,
    ] {
        let compat: Vec<String> = [
            LockMode::IS,
            LockMode::IX,
            LockMode::S,
            LockMode::SIX,
            LockMode::X,
        ]
        .iter()
        .filter(|b| a.compatible(**b))
        .map(|b| b.to_string())
        .collect();
        println!("  {a:>3} compatible with: {}", compat.join(" "));
    }
    println!("  sup(S, IX) = {}", LockMode::S.supremum(LockMode::IX));

    println!("\n== 2. automatic intention locks ==");
    let m = LockManager::new(LockManagerConfig::with_policy(PolicyKind::PaperSli));
    let mut agent = m.register_agent().unwrap();
    let mut ts = TxnLockState::new(agent.slot());
    m.begin(&mut ts, &mut agent);
    let record = LockId::Record(TableId(1), 7, 3);
    m.lock(&mut ts, &mut agent, record, LockMode::X).unwrap();
    for id in [
        LockId::Database,
        LockId::Table(TableId(1)),
        LockId::Page(TableId(1), 7),
        record,
    ] {
        println!("  {id}: held {:?}", ts.held_mode(id).unwrap());
    }

    println!("\n== 3. SLI lifecycle ==");
    // Heat the high-level locks (normally latch contention does this).
    for id in [
        LockId::Database,
        LockId::Table(TableId(1)),
        LockId::Page(TableId(1), 7),
    ] {
        let head = m.head(id).unwrap();
        for _ in 0..16 {
            head.hot().record(true);
        }
    }
    // X on the record is NOT heritable (criterion 3); downgrade scenario:
    // commit and watch the shared-mode ancestors pass to the agent.
    m.end_txn(&mut ts, &mut agent, true);
    println!(
        "  after commit, inherited: {:?}",
        agent.inherited_ids().collect::<Vec<_>>()
    );
    let before = m.stats().snapshot();
    m.begin(&mut ts, &mut agent);
    m.lock(
        &mut ts,
        &mut agent,
        LockId::Record(TableId(1), 7, 4),
        LockMode::S,
    )
    .unwrap();
    let after = m.stats().snapshot();
    println!(
        "  next txn: {} locks reclaimed via CAS, {} fresh lock-manager requests",
        after.sli_reclaimed - before.sli_reclaimed,
        after.lock_requests - before.lock_requests
    );
    m.end_txn(&mut ts, &mut agent, true);

    println!("\n== 4. invalidation by a conflicting transaction ==");
    // The agent still holds inherited locks; an X on the table from another
    // agent invalidates them in passing, without blocking.
    let m2 = Arc::clone(&m);
    let handle = std::thread::spawn(move || {
        let mut a2 = m2.register_agent().unwrap();
        let mut t2 = TxnLockState::new(a2.slot());
        m2.begin(&mut t2, &mut a2);
        let t0 = std::time::Instant::now();
        m2.lock(&mut t2, &mut a2, LockId::Table(TableId(1)), LockMode::X)
            .unwrap();
        let waited = t0.elapsed();
        m2.end_txn(&mut t2, &mut a2, true);
        waited
    });
    let waited = handle.join().unwrap();
    println!("  table X acquired in {waited:?} (inherited locks invalidated, not waited on)");
    println!(
        "  invalidations so far: {}",
        m.stats().snapshot().sli_invalidated
    );

    println!("\n== 5. deadlock detection (Dreadlocks) ==");
    let mcfg =
        LockManagerConfig::with_policy(PolicyKind::Baseline).lock_timeout(Duration::from_secs(2));
    let dm = LockManager::new(mcfg);
    let a = LockId::Record(TableId(9), 0, 0);
    let b = LockId::Record(TableId(9), 0, 1);
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let spawn = |first: LockId, second: LockId| {
        let dm = Arc::clone(&dm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut ag = dm.register_agent().unwrap();
            let mut tx = TxnLockState::new(ag.slot());
            dm.begin(&mut tx, &mut ag);
            dm.lock(&mut tx, &mut ag, first, LockMode::X).unwrap();
            barrier.wait();
            let r = dm.lock(&mut tx, &mut ag, second, LockMode::X);
            dm.end_txn(&mut tx, &mut ag, r.is_ok());
            r
        })
    };
    let h1 = spawn(a, b);
    let h2 = spawn(b, a);
    let (r1, r2) = (h1.join().unwrap(), h2.join().unwrap());
    println!("  txn1: {r1:?}");
    println!("  txn2: {r2:?}");
    println!("  exactly one victim: {}", (r1.is_err() ^ r2.is_err()));
    m.retire_agent(&mut agent);
}
