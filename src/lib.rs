//! # sli — Speculative Lock Inheritance
//!
//! Umbrella crate for the Rust reproduction of *"Improving OLTP Scalability
//! using Speculative Lock Inheritance"* (Johnson, Pandis, Ailamaki —
//! VLDB 2009). Re-exports the public API of every workspace crate so that
//! examples and downstream users can depend on a single crate.
//!
//! ## Quickstart
//!
//! ```
//! use sli::engine::{Database, DatabaseConfig};
//! use sli::core::LockMode;
//!
//! let db = Database::open(DatabaseConfig::default());
//! let accounts = db.create_table("accounts").unwrap();
//! let session = db.session();
//! session
//!     .run(|txn| {
//!         let rid = txn.insert(accounts, 1, b"100")?;
//!         let val = txn.read(accounts, rid)?;
//!         assert_eq!(&val[..], b"100");
//!         Ok(())
//!     })
//!     .unwrap();
//! assert_eq!(LockMode::S.compatible(LockMode::IS), true);
//! ```

pub use sli_core as core;
pub use sli_engine as engine;
pub use sli_harness as harness;
pub use sli_latch as latch;
pub use sli_profiler as profiler;
pub use sli_storage as storage;
pub use sli_traffic as traffic;
pub use sli_wal as wal;
pub use sli_workloads as workloads;
