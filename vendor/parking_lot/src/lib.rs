//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this stand-in implementing exactly the surface the SLI crates use:
//! `Mutex`/`MutexGuard`, `Condvar` (with `wait`/`wait_for`), `RwLock`, and
//! the raw primitives `RawMutex`/`RawRwLock` together with the `lock_api`
//! traits they implement.
//!
//! All blocking primitives are built on the [`parking`] module — a real
//! parking-lot-style waiter subsystem with address-keyed wait queues over
//! `std::thread::park`/`unpark`. A contended acquire adaptively spins
//! (bounded, tunable via `SLI_LATCH_SPIN`), then enqueues itself and
//! sleeps until the releasing thread wakes it directly. There are no timed
//! sleeps anywhere in the acquire paths: under oversubscription a release
//! makes its waiter runnable immediately instead of leaving it to poll on
//! a 50 µs timer, which is what the old spin-then-sleep stand-in did.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::Duration;

pub mod parking;
pub(crate) mod shim;

use shim::{AtomicU8, AtomicUsize};

use parking::{ParkResult, ParkingStats, TOKEN_HANDOFF, TOKEN_NORMAL};

/// `lock_api`-compatible raw lock traits (subset).
pub mod lock_api {
    /// Raw mutual-exclusion primitive, `lock_api::RawMutex` subset.
    ///
    /// # Safety
    ///
    /// Implementations must provide mutual exclusion: between a successful
    /// `lock`/`try_lock` and the matching `unlock`, no other `lock` or
    /// `try_lock` may succeed.
    pub unsafe trait RawMutex {
        /// Initial (unlocked) value.
        const INIT: Self;
        /// Acquire the lock, blocking until available.
        fn lock(&self);
        /// Try to acquire the lock without blocking.
        fn try_lock(&self) -> bool;
        /// Release the lock.
        ///
        /// # Safety
        ///
        /// Callable only by the current holder of the lock.
        unsafe fn unlock(&self);
    }

    /// Raw reader-writer primitive, `lock_api::RawRwLock` subset.
    ///
    /// # Safety
    ///
    /// Implementations must uphold shared/exclusive semantics: an exclusive
    /// holder excludes all others; shared holders exclude exclusive ones.
    pub unsafe trait RawRwLock {
        /// Initial (unlocked) value.
        const INIT: Self;
        /// Acquire in shared mode, blocking until available.
        fn lock_shared(&self);
        /// Try to acquire in shared mode without blocking.
        fn try_lock_shared(&self) -> bool;
        /// Release a shared acquisition.
        ///
        /// # Safety
        ///
        /// Callable only by a current shared holder.
        unsafe fn unlock_shared(&self);
        /// Acquire in exclusive mode, blocking until available.
        fn lock_exclusive(&self);
        /// Try to acquire in exclusive mode without blocking.
        fn try_lock_exclusive(&self) -> bool;
        /// Release an exclusive acquisition.
        ///
        /// # Safety
        ///
        /// Callable only by the current exclusive holder.
        unsafe fn unlock_exclusive(&self);
    }
}

/// How a contended raw-lock acquisition waited: adaptive-spin iterations
/// burned and times the thread actually parked. Threaded through
/// `sli-latch`'s [`LatchStats`-style] counters so profiles can distinguish
/// spinning (busy CPU) from parking (descheduled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitProfile {
    /// Spin/yield iterations before (between) parks.
    pub spins: u32,
    /// Times the thread went to sleep on the wait queue.
    pub parks: u32,
}

/// Adaptive spin budget before parking, overridable with `SLI_LATCH_SPIN`
/// (0 parks immediately). The default is deliberately small: spinning only
/// pays off when the holder is running on another core, and past the
/// budget a parked waiter costs nothing.
fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var("SLI_LATCH_SPIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(40)
    })
}

/// One adaptive-spin step: exponential busy-spin, never `yield_now`.
///
/// Yielding looks polite but is catastrophic under oversubscription: with
/// many runnable CPU-bound threads, one `yield_now` can cost a full
/// scheduler rotation (hundreds of µs observed), and a waiter that retries
/// through a yield-laden budget burns tens of ms while the lock turns over
/// thousands of times. A waiter that outlives the (cheap, ns-scale) spin
/// budget should park — the wakeup is directed, so parking early costs one
/// futex round-trip, not a poll.
#[inline]
fn spin_step(step: u32) {
    for _ in 0..(1u32 << step.min(5)) {
        std::hint::spin_loop();
    }
}

/// Parked-wait safety-net deadline (see the comment at the `park` call in
/// [`RawMutex::lock_slow`]). A timed-out waiter simply revalidates and
/// re-parks; there is no polling loop in the common case.
const SAFETY_NET: Duration = Duration::from_millis(1);

/// Re-export of the parking counters for harness reporting.
pub fn parking_stats() -> ParkingStats {
    parking::stats()
}

// ---------------------------------------------------------------------------
// RawMutex
// ---------------------------------------------------------------------------

const LOCKED: u8 = 1;
/// Set while at least one thread is (or is about to be) parked on the
/// mutex. An unlock that observes it must hand the bit's knowledge to the
/// parking lot ([`parking::unpark_one`]'s callback keeps it set while more
/// waiters remain).
const PARKED: u8 = 2;

/// Raw word-sized mutex with adaptive spin and queued parking (stand-in
/// for `parking_lot::RawMutex`).
pub struct RawMutex {
    state: AtomicU8,
}

impl RawMutex {
    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// [`lock_api::RawMutex::lock`] that also reports how the acquisition
    /// waited. The uncontended path performs a single CAS.
    #[inline]
    pub fn lock_profiled(&self) -> WaitProfile {
        // ordering: acquire on success pairs with the release in `unlock`
        // so the critical section sees the previous holder's writes;
        // relaxed on failure — we fall to the slow path and reload.
        if self
            .state
            .compare_exchange_weak(0, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return WaitProfile::default();
        }
        self.lock_slow()
    }

    #[cold]
    fn lock_slow(&self) -> WaitProfile {
        let mut profile = WaitProfile::default();
        let mut spins = 0u32;
        let limit = spin_limit();
        loop {
            // ordering: relaxed — just a CAS seed; the acquire CAS below is
            // what synchronizes on success.
            let s = self.state.load(Ordering::Relaxed);
            if s & LOCKED == 0 {
                // ordering: acquire pairs with `unlock`'s release (see the
                // fast path above).
                if self
                    .state
                    .compare_exchange_weak(s, s | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    parking::note_spins(u64::from(profile.spins));
                    return profile;
                }
                continue;
            }
            // Keep spinning only while nobody is parked (parked waiters
            // have queue priority for fairness of wakeup) and the budget
            // lasts.
            if s & PARKED == 0 {
                if spins < limit {
                    spin_step(spins);
                    spins += 1;
                    profile.spins += 1;
                    continue;
                }
                // ordering: relaxed — setting PARKED publishes nothing; the
                // park validate re-reads state under the bucket lock.
                if self
                    .state
                    .compare_exchange_weak(s, s | PARKED, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
            }
            let r = parking::park(
                self.addr(),
                // ordering: relaxed — the bucket lock inside `park` orders
                // this validate against the unparker's state update.
                || self.state.load(Ordering::Relaxed) == LOCKED | PARKED,
                || {},
                // Safety-net deadline, NOT a poll: wakeups arrive directed
                // and immediately. But a wake is delivered in two steps
                // (state update under the bucket lock, then the OS unpark),
                // and on a fully loaded core the waker can be preempted
                // between them — leaving a wake pending-but-undelivered for
                // multiple scheduler timeslices (tens of ms observed). The
                // deadline bounds that pathology; it is 20× coarser than
                // the old 50 µs sleep-poll and fires only in that window.
                Some(shim::now() + SAFETY_NET),
            );
            if r != ParkResult::Invalid {
                // Unparked or safety-net timeout: the thread really slept.
                profile.parks += 1;
            }
            if r == ParkResult::Unparked(TOKEN_HANDOFF) {
                // Fair wake: the unlocking thread transferred ownership to
                // us directly (state already LOCKED on our behalf).
                parking::note_spins(u64::from(profile.spins));
                return profile;
            }
            // Woken, timed out, or validation failed because the lock
            // changed: retry with a fresh mini spin budget.
            spins = 0;
        }
    }
}

// SAFETY: mutual exclusion holds because LOCKED is only ever set by a
// successful CAS from a state with LOCKED clear, and only cleared by the
// holder's unlock (directly, or via a handoff that keeps it set on the
// woken thread's behalf).
unsafe impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex {
        state: AtomicU8::new(0),
    };

    #[inline]
    fn lock(&self) {
        let _ = self.lock_profiled();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        // ordering: relaxed seed load; the CAS below synchronizes.
        let s = self.state.load(Ordering::Relaxed);
        // ordering: acquire CAS pairs with `unlock`'s release; relaxed
        // failure just reports busy.
        s & LOCKED == 0
            && self
                .state
                .compare_exchange(s, s | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    #[inline]
    // SAFETY: contract — only the current holder may call this (lock_api).
    unsafe fn unlock(&self) {
        // ordering: release publishes the critical section to the next
        // acquire CAS; failure means PARKED is set and the slow path
        // re-synchronizes under the bucket lock.
        if self
            .state
            .compare_exchange(LOCKED, 0, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        self.unlock_slow();
    }
}

impl RawMutex {
    #[cold]
    fn unlock_slow(&self) {
        // PARKED is set: wake the first waiter, keeping the bit while more
        // remain. The state store runs under the bucket lock, so a parker's
        // validate cannot interleave with it. On a fair wake (periodic
        // anti-barging, see `UnparkResult::be_fair`) the lock is handed to
        // the woken thread directly: LOCKED stays set on its behalf, so no
        // spinning thread can steal the lock and starve it.
        parking::unpark_one(self.addr(), |r| {
            if r.unparked && r.be_fair {
                let next = LOCKED | if r.have_more { PARKED } else { 0 };
                // ordering: release — the handoff transfers the critical
                // section directly to the woken thread.
                self.state.store(next, Ordering::Release);
                TOKEN_HANDOFF
            } else {
                let next = if r.unparked && r.have_more { PARKED } else { 0 };
                // ordering: release publishes the critical section to the
                // next acquirer (woken or barging).
                self.state.store(next, Ordering::Release);
                TOKEN_NORMAL
            }
        });
    }
}

// ---------------------------------------------------------------------------
// RawRwLock
// ---------------------------------------------------------------------------

const WRITER: usize = usize::MAX;

/// Raw reader-writer lock with adaptive spin and queued parking (stand-in
/// for `parking_lot::RawRwLock`).
///
/// Writers take priority via the `pending_writers` flag so a stream of
/// readers cannot starve a writer indefinitely (the anti-starvation
/// behaviour of the previous spin-then-sleep version survives). Writer
/// handoff: an exclusive unlock with pending writers wakes exactly one
/// parked writer; only when no writer is pending are all parked readers
/// released.
///
/// Readers park on `addr + 1`, writers on `addr` (lock addresses are word
/// aligned, so the two keys never collide across objects). The
/// reader-defer check (`pending_writers`) against the last-reader wakeup
/// check is a store-buffering race, hence the `SeqCst` orderings on the
/// four accesses involved.
pub struct RawRwLock {
    /// `0` = free, `WRITER` = exclusively held, else the shared count.
    state: AtomicUsize,
    /// Number of writers spinning or parked; readers defer to them.
    pending_writers: AtomicUsize,
}

impl RawRwLock {
    #[inline]
    fn writer_key(&self) -> usize {
        self as *const _ as usize
    }

    #[inline]
    fn reader_key(&self) -> usize {
        self as *const _ as usize + 1
    }

    /// Profiled shared acquisition.
    #[inline]
    pub fn lock_shared_profiled(&self) -> WaitProfile {
        if self.pending_writers.load(Ordering::SeqCst) == 0
            && lock_api::RawRwLock::try_lock_shared(self)
        {
            return WaitProfile::default();
        }
        self.lock_shared_slow()
    }

    #[cold]
    fn lock_shared_slow(&self) -> WaitProfile {
        let mut profile = WaitProfile::default();
        let mut spins = 0u32;
        let limit = spin_limit();
        loop {
            if self.pending_writers.load(Ordering::SeqCst) == 0
                && lock_api::RawRwLock::try_lock_shared(self)
            {
                parking::note_spins(u64::from(profile.spins));
                return profile;
            }
            if spins < limit {
                spin_step(spins);
                spins += 1;
                profile.spins += 1;
                continue;
            }
            let r = parking::park(
                self.reader_key(),
                || {
                    self.pending_writers.load(Ordering::SeqCst) != 0
                        || self.state.load(Ordering::SeqCst) == WRITER
                },
                || {},
                // Same pending-wake safety net as RawMutex::lock_slow.
                Some(shim::now() + SAFETY_NET),
            );
            if r != ParkResult::Invalid {
                // Unparked or safety-net timeout: the thread really slept.
                profile.parks += 1;
            }
            spins = 0;
        }
    }

    /// Profiled exclusive acquisition.
    #[inline]
    pub fn lock_exclusive_profiled(&self) -> WaitProfile {
        // ordering: acquire pairs with the unlock stores so the writer
        // sees all prior holders' effects; relaxed failure falls to the
        // slow path.
        if self
            .state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return WaitProfile::default();
        }
        self.lock_exclusive_slow()
    }

    #[cold]
    fn lock_exclusive_slow(&self) -> WaitProfile {
        let mut profile = WaitProfile::default();
        self.pending_writers.fetch_add(1, Ordering::SeqCst);
        let mut spins = 0u32;
        let limit = spin_limit();
        loop {
            // ordering: acquire on success (see the fast path); relaxed
            // failure reloads below.
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.pending_writers.fetch_sub(1, Ordering::SeqCst);
                parking::note_spins(u64::from(profile.spins));
                return profile;
            }
            if spins < limit {
                spin_step(spins);
                spins += 1;
                profile.spins += 1;
                continue;
            }
            let r = parking::park(
                self.writer_key(),
                || self.state.load(Ordering::SeqCst) != 0,
                || {},
                // Same pending-wake safety net as RawMutex::lock_slow.
                Some(shim::now() + SAFETY_NET),
            );
            if r != ParkResult::Invalid {
                // Unparked or safety-net timeout: the thread really slept.
                profile.parks += 1;
            }
            spins = 0;
        }
    }
}

// SAFETY: shared/exclusive semantics hold because WRITER is only set by a
// CAS from 0 (no holders), shared counts only increment by CAS from a
// non-WRITER state, and each holder decrements/clears exactly what it set.
unsafe impl lock_api::RawRwLock for RawRwLock {
    const INIT: RawRwLock = RawRwLock {
        state: AtomicUsize::new(0),
        pending_writers: AtomicUsize::new(0),
    };

    #[inline]
    fn lock_shared(&self) {
        let _ = self.lock_shared_profiled();
    }

    #[inline]
    fn try_lock_shared(&self) -> bool {
        // ordering: relaxed seed load; acquire CAS pairs with the writer's
        // unlock store so readers see its writes, relaxed failure retries.
        let cur = self.state.load(Ordering::Relaxed);
        // ordering: acquire CAS pairs with the writer's unlock store so
        // readers see its writes; relaxed failure just reports busy.
        cur != WRITER
            && self
                .state
                .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    #[inline]
    // SAFETY: contract — only a current shared holder may call this.
    unsafe fn unlock_shared(&self) {
        if self.state.fetch_sub(1, Ordering::SeqCst) == 1
            && self.pending_writers.load(Ordering::SeqCst) > 0
        {
            // Last reader out with a writer waiting: hand off.
            parking::unpark_one(self.writer_key(), |_| TOKEN_NORMAL);
        }
    }

    #[inline]
    fn lock_exclusive(&self) {
        let _ = self.lock_exclusive_profiled();
    }

    #[inline]
    fn try_lock_exclusive(&self) -> bool {
        // ordering: acquire on success (see `lock_exclusive`); relaxed
        // failure just reports busy.
        self.state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[inline]
    // SAFETY: contract — only the current exclusive holder may call this.
    unsafe fn unlock_exclusive(&self) {
        self.state.store(0, Ordering::SeqCst);
        if self.pending_writers.load(Ordering::SeqCst) > 0 {
            // Writer handoff: the pending flag keeps readers deferring, so
            // wake the next writer rather than the whole reader crowd.
            parking::unpark_one(self.writer_key(), |_| TOKEN_NORMAL);
        } else {
            parking::unpark_all(self.reader_key());
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex / MutexGuard
// ---------------------------------------------------------------------------

/// Mutex with parking_lot's panic-free, non-poisoning API, built directly
/// on [`RawMutex`] so [`Condvar`] can interoperate with it through the
/// parking lot.
pub struct Mutex<T: ?Sized> {
    raw: RawMutex,
    data: UnsafeCell<T>,
}

// SAFETY: the raw mutex serializes access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: shared references only reach `data` through a held guard.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            raw: <RawMutex as lock_api::RawMutex>::INIT,
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking the current thread until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_api::RawMutex::lock(&self.raw);
        MutexGuard { mutex: self }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if lock_api::RawMutex::try_lock(&self.raw) {
            Some(MutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves the mutex is held.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard's existence proves the mutex is held.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the guard's existence proves the mutex is held.
        unsafe { lock_api::RawMutex::unlock(&self.mutex.raw) };
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`], built on
/// the parking lot. Waiters enqueue on the condvar's address *before*
/// releasing the mutex, so a notify between the release and the sleep
/// cannot be missed; `notify_one`/`notify_all` report real woken counts.
pub struct Condvar {
    /// Never read: parking state lives in the global lot, keyed by this
    /// condvar's address. The field exists to make `Condvar` non-zero-sized
    /// — a ZST has no unique address, so boxed/collected condvars (or a
    /// ZST field co-located with another lock by layout) would share wait
    /// queues and cross-deliver wakes. Real parking_lot keeps a state word
    /// for the same reason.
    _addr_identity: std::sync::atomic::AtomicU8,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            _addr_identity: std::sync::atomic::AtomicU8::new(0),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Block until notified, releasing the guard's mutex while parked.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        let mutex = guard.mutex;
        let r = parking::park(
            self.addr(),
            || true,
            // SAFETY: the guard proves the mutex is held; it is re-locked
            // below before the guard becomes usable again.
            || unsafe { lock_api::RawMutex::unlock(&mutex.raw) },
            None,
        );
        debug_assert_ne!(r, ParkResult::Invalid);
        lock_api::RawMutex::lock(&mutex.raw);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mutex = guard.mutex;
        let deadline = shim::now().checked_add(timeout);
        let r = parking::park(
            self.addr(),
            || true,
            // SAFETY: as in `wait`.
            || unsafe { lock_api::RawMutex::unlock(&mutex.raw) },
            deadline,
        );
        lock_api::RawMutex::lock(&mutex.raw);
        WaitTimeoutResult(r == ParkResult::TimedOut)
    }

    /// Wake one parked waiter. Returns whether a thread was woken.
    pub fn notify_one(&self) -> bool {
        parking::unpark_one(self.addr(), |_| TOKEN_NORMAL)
    }

    /// Wake every parked waiter, returning how many were woken.
    pub fn notify_all(&self) -> usize {
        parking::unpark_all(self.addr())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock with parking_lot's non-poisoning API, built on
/// [`RawRwLock`].
pub struct RwLock<T: ?Sized> {
    raw: RawRwLock,
    data: UnsafeCell<T>,
}

// SAFETY: the raw rwlock serializes access to `data` (shared readers only
// get `&T`).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: concurrent readers see `&T` only (hence the `Sync` bound on T);
// writers are exclusive via the raw lock.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            raw: <RawRwLock as lock_api::RawRwLock>::INIT,
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire in shared mode.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        lock_api::RawRwLock::lock_shared(&self.raw);
        RwLockReadGuard { lock: self }
    }

    /// Acquire in exclusive mode.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        lock_api::RawRwLock::lock_exclusive(&self.raw);
        RwLockWriteGuard { lock: self }
    }

    /// Try to acquire in shared mode without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        if lock_api::RawRwLock::try_lock_shared(&self.raw) {
            Some(RwLockReadGuard { lock: self })
        } else {
            None
        }
    }

    /// Try to acquire in exclusive mode without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        if lock_api::RawRwLock::try_lock_exclusive(&self.raw) {
            Some(RwLockWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared-mode RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves shared ownership.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the guard's existence proves shared ownership.
        unsafe { lock_api::RawRwLock::unlock_shared(&self.lock.raw) };
    }
}

/// Exclusive-mode RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves exclusive ownership.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard's existence proves exclusive ownership.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the guard's existence proves exclusive ownership.
        unsafe { lock_api::RawRwLock::unlock_exclusive(&self.lock.raw) };
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::{RawMutex as _, RawRwLock as _};
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn raw_mutex_excludes() {
        let m = RawMutex::INIT;
        assert!(m.try_lock());
        assert!(!m.try_lock());
        // SAFETY: this thread acquired the lock just above.
        unsafe { m.unlock() };
        assert!(m.try_lock());
        // SAFETY: reacquired on the previous line.
        unsafe { m.unlock() };
    }

    #[test]
    fn raw_rwlock_shared_and_exclusive() {
        let l = RawRwLock::INIT;
        assert!(l.try_lock_shared());
        assert!(l.try_lock_shared());
        assert!(!l.try_lock_exclusive());
        // SAFETY: two shared acquisitions succeeded above; release both.
        unsafe { l.unlock_shared() };
        // SAFETY: as above — this thread holds the second shared lock.
        unsafe { l.unlock_shared() };
        assert!(l.try_lock_exclusive());
        assert!(!l.try_lock_shared());
        // SAFETY: the exclusive acquisition succeeded two lines up.
        unsafe { l.unlock_exclusive() };
    }

    #[test]
    fn raw_mutex_parked_handoff() {
        // Force the parked path: holder keeps the mutex long enough for the
        // waiter to exhaust its spin budget and park, then releases; the
        // unlock must wake the parked waiter.
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g += 1;
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(g);
        h.join().unwrap();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn raw_mutex_stress_many_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 80_000);
    }

    #[test]
    fn rwlock_concurrent_reader_writer_stress() {
        let l = Arc::new(RwLock::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for i in 0..6 {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if i % 3 == 0 {
                        *l.write() += 1;
                        local += 1;
                    } else {
                        let _v = *l.read();
                    }
                }
                local
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        let wrote: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(*l.read(), wrote);
    }

    #[test]
    fn rwlock_writer_not_starved_by_readers() {
        // Regression: a continuous stream of readers must not starve a
        // writer (the pending flag defers new readers).
        let l = Arc::new(RwLock::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _g = l.read();
                }
            }));
        }
        let t0 = Instant::now();
        {
            let mut w = l.write();
            *w = 42;
        }
        let write_latency = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 42);
        assert!(
            write_latency < Duration::from_secs(2),
            "writer starved: {write_latency:?}"
        );
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_cross_thread_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_notify_counts_are_real() {
        // No waiters: notify reports nothing woken (the old stand-in
        // returned constant true/0 regardless).
        let cv = Condvar::new();
        assert!(!cv.notify_one());
        assert_eq!(cv.notify_all(), 0);

        // Three waiters: notify_all reports all of them.
        let pair = Arc::new((Mutex::new(false), Condvar::new(), AtomicUsize::new(0)));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let p = Arc::clone(&pair);
            handles.push(std::thread::spawn(move || {
                let (m, cv, waiting) = &*p;
                let mut done = m.lock();
                while !*done {
                    waiting.fetch_add(1, Ordering::SeqCst);
                    cv.wait(&mut done);
                }
            }));
        }
        let (m, cv, waiting) = &*pair;
        // Wait until all three are registered and inside wait() (they
        // increment under the mutex, so once we can take the mutex and see
        // 3, all three have enqueued on the condvar).
        loop {
            let g = m.lock();
            if waiting.load(Ordering::SeqCst) >= 3 {
                drop(g);
                break;
            }
            drop(g);
            std::thread::yield_now();
        }
        *m.lock() = true;
        assert_eq!(cv.notify_all(), 3);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn condvar_timed_wait_cross_thread_notify() {
        // A timed wait must return untimed-out when notified in time.
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            let mut timed_out = false;
            while !*done && !timed_out {
                timed_out = cv.wait_for(&mut done, Duration::from_secs(5)).timed_out();
            }
            timed_out
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        assert!(!h.join().unwrap(), "wait timed out despite notify");
    }

    #[test]
    fn mutex_guard_counter_consistency() {
        let m = Arc::new(Mutex::new(0u64));
        let c = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let mut g = m.lock();
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                    *g += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
        assert_eq!(c.load(Ordering::Relaxed), 8_000);
    }
}
