//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in implementing exactly the surface the SLI crates
//! use: `Mutex`/`MutexGuard`, `Condvar` (with `wait`/`wait_for`),
//! `RwLock`, and the raw primitives `RawMutex`/`RawRwLock` together with
//! the `lock_api` traits they implement.
//!
//! Blocking primitives are built on `std::sync`; the raw primitives use a
//! bounded spin (with `yield_now`) before falling back to short parked
//! sleeps, approximating parking_lot's adaptive spin-then-park behaviour
//! closely enough for correctness and for the latch-contention accounting
//! the paper reproduction relies on.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// `lock_api`-compatible raw lock traits (subset).
pub mod lock_api {
    /// Raw mutual-exclusion primitive, `lock_api::RawMutex` subset.
    ///
    /// # Safety
    ///
    /// Implementations must provide mutual exclusion: between a successful
    /// `lock`/`try_lock` and the matching `unlock`, no other `lock` or
    /// `try_lock` may succeed.
    pub unsafe trait RawMutex {
        /// Initial (unlocked) value.
        const INIT: Self;
        /// Acquire the lock, blocking until available.
        fn lock(&self);
        /// Try to acquire the lock without blocking.
        fn try_lock(&self) -> bool;
        /// Release the lock.
        ///
        /// # Safety
        ///
        /// Callable only by the current holder of the lock.
        unsafe fn unlock(&self);
    }

    /// Raw reader-writer primitive, `lock_api::RawRwLock` subset.
    ///
    /// # Safety
    ///
    /// Implementations must uphold shared/exclusive semantics: an exclusive
    /// holder excludes all others; shared holders exclude exclusive ones.
    pub unsafe trait RawRwLock {
        /// Initial (unlocked) value.
        const INIT: Self;
        /// Acquire in shared mode, blocking until available.
        fn lock_shared(&self);
        /// Try to acquire in shared mode without blocking.
        fn try_lock_shared(&self) -> bool;
        /// Release a shared acquisition.
        ///
        /// # Safety
        ///
        /// Callable only by a current shared holder.
        unsafe fn unlock_shared(&self);
        /// Acquire in exclusive mode, blocking until available.
        fn lock_exclusive(&self);
        /// Try to acquire in exclusive mode without blocking.
        fn try_lock_exclusive(&self) -> bool;
        /// Release an exclusive acquisition.
        ///
        /// # Safety
        ///
        /// Callable only by the current exclusive holder.
        unsafe fn unlock_exclusive(&self);
    }
}

const SPIN_LIMIT: u32 = 64;
const PARK_SLEEP: Duration = Duration::from_micros(50);

#[inline]
fn backoff(attempt: u32) {
    if attempt < SPIN_LIMIT {
        std::hint::spin_loop();
    } else if attempt < SPIN_LIMIT * 2 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(PARK_SLEEP);
    }
}

/// Raw spin-then-park mutex (stand-in for `parking_lot::RawMutex`).
pub struct RawMutex {
    state: AtomicUsize,
}

unsafe impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex {
        state: AtomicUsize::new(0),
    };

    #[inline]
    fn lock(&self) {
        let mut attempt = 0u32;
        while self
            .state
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff(attempt);
            attempt = attempt.wrapping_add(1);
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[inline]
    unsafe fn unlock(&self) {
        self.state.store(0, Ordering::Release);
    }
}

const WRITER: usize = usize::MAX;

/// Raw spin-then-park reader-writer lock (stand-in for
/// `parking_lot::RawRwLock`). Writers take priority via a pending flag so
/// a stream of readers cannot starve a writer indefinitely.
pub struct RawRwLock {
    /// `0` = free, `WRITER` = exclusively held, else the shared count.
    state: AtomicUsize,
    /// Number of writers waiting; readers defer to them.
    pending_writers: AtomicUsize,
}

unsafe impl lock_api::RawRwLock for RawRwLock {
    const INIT: RawRwLock = RawRwLock {
        state: AtomicUsize::new(0),
        pending_writers: AtomicUsize::new(0),
    };

    #[inline]
    fn lock_shared(&self) {
        let mut attempt = 0u32;
        loop {
            if self.pending_writers.load(Ordering::Relaxed) == 0 && self.try_lock_shared() {
                return;
            }
            backoff(attempt);
            attempt = attempt.wrapping_add(1);
        }
    }

    #[inline]
    fn try_lock_shared(&self) -> bool {
        let cur = self.state.load(Ordering::Relaxed);
        cur != WRITER
            && self
                .state
                .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    #[inline]
    unsafe fn unlock_shared(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    #[inline]
    fn lock_exclusive(&self) {
        self.pending_writers.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        while self
            .state
            .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff(attempt);
            attempt = attempt.wrapping_add(1);
        }
        self.pending_writers.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    fn try_lock_exclusive(&self) -> bool {
        self.state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[inline]
    unsafe fn unlock_exclusive(&self) {
        self.state.store(0, Ordering::Release);
    }
}

/// Mutex with parking_lot's panic-free, non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking the current thread until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is always `Some` between `Condvar` waits; it exists
/// so `Condvar::wait` can move the std guard out and back through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok(pair) => pair,
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire in shared mode.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire in exclusive mode.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire in shared mode without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire in exclusive mode without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared-mode RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-mode RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::{RawMutex as _, RawRwLock as _};
    use super::*;
    use std::sync::Arc;

    #[test]
    fn raw_mutex_excludes() {
        let m = RawMutex::INIT;
        assert!(m.try_lock());
        assert!(!m.try_lock());
        unsafe { m.unlock() };
        assert!(m.try_lock());
        unsafe { m.unlock() };
    }

    #[test]
    fn raw_rwlock_shared_and_exclusive() {
        let l = RawRwLock::INIT;
        assert!(l.try_lock_shared());
        assert!(l.try_lock_shared());
        assert!(!l.try_lock_exclusive());
        unsafe { l.unlock_shared() };
        unsafe { l.unlock_shared() };
        assert!(l.try_lock_exclusive());
        assert!(!l.try_lock_shared());
        unsafe { l.unlock_exclusive() };
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_cross_thread_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
