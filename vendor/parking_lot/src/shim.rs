//! Facade over the sync/thread/time primitives this crate is built on.
//!
//! With the `sli_check` feature off (every production build) these are
//! plain `std` types — the passthrough below compiles to exactly the code
//! that was here before the facade existed. With the feature on they come
//! from the `sli-check` model checker, which turns every operation into a
//! deterministic schedule point so the parker and raw-lock protocols can
//! be exhaustively checked over thread interleavings.

#[cfg(feature = "sli_check")]
pub(crate) use sli_check::sync::{AtomicBool, AtomicU8, AtomicUsize, Mutex, MutexGuard};
#[cfg(feature = "sli_check")]
pub(crate) use sli_check::thread::{current, park, park_timeout, Thread};

/// The current time: logical under an active model, real otherwise.
#[cfg(feature = "sli_check")]
pub(crate) fn now() -> std::time::Instant {
    sli_check::time::now()
}

/// Whether wall-clock fairness heuristics may run (never under a model —
/// they are nondeterministic and mutate global bucket state).
#[cfg(feature = "sli_check")]
pub(crate) fn fair_wakes() -> bool {
    sli_check::time::fair_wakes()
}

#[cfg(not(feature = "sli_check"))]
mod passthrough {
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize};
    pub(crate) use std::thread::{current, park, park_timeout, Thread};

    /// Non-poisoning `const`-constructible mutex, API-matched to the
    /// sli-check shim so call sites are identical under both cfgs.
    pub(crate) struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    pub(crate) type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub(crate) const fn new(t: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(t),
            }
        }

        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    pub(crate) fn now() -> std::time::Instant {
        std::time::Instant::now()
    }

    pub(crate) fn fair_wakes() -> bool {
        true
    }
}

#[cfg(not(feature = "sli_check"))]
pub(crate) use passthrough::*;
