//! Address-keyed thread parking — the waiter subsystem behind every raw
//! lock in this crate.
//!
//! This is a compact reimplementation of the real parking lot's core idea
//! (itself derived from WebKit's `WTF::ParkingLot` and Linux futexes): a
//! global, hashed array of *buckets*, each holding a tiny spin lock and a
//! FIFO queue of waiting threads keyed by an address. A thread that must
//! block calls [`park`] with the address of the lock it waits on and a
//! `validate` closure; the closure runs *under the bucket lock* and
//! re-checks the wait condition, which is what makes the protocol free of
//! missed wakeups:
//!
//! * a waker holding the bucket lock either finds the waiter already
//!   enqueued (and wakes it), or
//! * the waiter's `validate` runs after the waker released the bucket lock
//!   and observes the updated lock state, refusing to park.
//!
//! Waiting itself is real thread parking (`std::thread::park`), so a
//! blocked thread consumes no CPU and is woken by its waker directly —
//! there is no timed-sleep polling anywhere in this module, which is the
//! point: under oversubscription (more runnable threads than cores) a
//! directed `unpark` makes the waiter runnable immediately, while the old
//! spin-then-`sleep(50µs)` backoff could only notice a release when its
//! own timer fired.

use crate::shim;
use crate::shim::{AtomicBool, AtomicUsize, Thread};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The default token delivered by wakes that carry no special meaning.
pub const TOKEN_NORMAL: usize = 0;
/// Direct-handoff token: the waker transferred lock ownership to the woken
/// thread (eventual-fairness anti-barging, see [`UnparkResult::be_fair`]).
pub const TOKEN_HANDOFF: usize = 1;

/// Outcome of a [`park`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParkResult {
    /// A waker dequeued and woke this thread, delivering the given token
    /// (the [`unpark_one`] callback's return value, [`TOKEN_NORMAL`] for
    /// [`unpark_all`]).
    Unparked(usize),
    /// `validate` returned false; the thread never slept.
    Invalid,
    /// The deadline passed before any waker arrived.
    TimedOut,
}

impl ParkResult {
    /// Whether the thread was woken by a waker (any token).
    pub fn unparked(self) -> bool {
        matches!(self, ParkResult::Unparked(_))
    }
}

/// Result handed to the [`unpark_one`] callback, mirroring parking_lot's
/// `UnparkResult`: whether a thread was dequeued, and whether more threads
/// remain queued on the same address. The callback runs while the bucket
/// lock is still held, so lock state updated inside it is consistent with
/// the queue (a newly arriving parker's `validate` serializes behind it).
#[derive(Clone, Copy, Debug)]
pub struct UnparkResult {
    /// A waiter was dequeued (and will be woken when the callback returns).
    pub unparked: bool,
    /// At least one more waiter remains queued on this address.
    pub have_more: bool,
    /// Eventual-fairness signal: set periodically (every ~0.5 ms per
    /// bucket) so lock implementations can hand the lock directly to the
    /// woken thread instead of letting barging threads starve it. Without
    /// this, a waiter on an oversubscribed machine can lose the re-acquire
    /// race indefinitely, re-parking at the tail each time.
    pub be_fair: bool,
}

/// Per-thread parking slot, shared with wakers via `Arc` so a waker can
/// still signal a slot whose thread raced ahead (e.g. timed out).
struct ParkSlot {
    thread: Thread,
    /// Token from the waker, read by the parker after `notified`.
    token: AtomicUsize,
    /// Set (then `unpark`ed) by the waker that dequeued this thread.
    notified: AtomicBool,
}

thread_local! {
    static SLOT: Arc<ParkSlot> = Arc::new(ParkSlot {
        thread: shim::current(),
        token: AtomicUsize::new(TOKEN_NORMAL),
        notified: AtomicBool::new(false),
    });
}

/// Minimum interval between fair (direct-handoff) wakes per bucket.
const FAIR_PERIOD: std::time::Duration = std::time::Duration::from_micros(500);

/// One queued waiter.
struct Waiter {
    addr: usize,
    slot: Arc<ParkSlot>,
}

/// Bucket state guarded by the bucket's word lock.
struct BucketInner {
    /// FIFO of waiters (mixed addresses; matched by `Waiter::addr`).
    queue: Vec<Waiter>,
    /// When the next wake from this bucket should be fair (direct
    /// handoff). `None` until the first wake.
    next_fair: Option<Instant>,
}

/// A bucket: an OS mutex protecting a FIFO of waiters. Cache-line
/// aligned so adjacent buckets' futex words and queues never false-share
/// under heavy park/unpark traffic (the hazard `DigestTable::stride_for`
/// guards against on the digest side).
///
/// The bucket lock is `std::sync::Mutex` — on Linux a futex — rather than
/// a user-space spin lock. Bucket critical sections are a handful of
/// instructions, but under oversubscription a spin-yield lock has a
/// pathological mode: when the holder is preempted mid-section, waiters
/// yield in a storm while the scheduler rotates through every other
/// runnable thread's timeslice before the holder runs again (tens of ms).
/// The futex path blocks waiters in the kernel and hands the CPU straight
/// back to the holder. (std's mutex is independent of this module, so no
/// circularity.)
#[repr(align(128))]
struct Bucket {
    inner: shim::Mutex<BucketInner>,
}

struct BucketGuard<'a>(shim::MutexGuard<'a, BucketInner>);

impl Bucket {
    const fn new() -> Self {
        Bucket {
            inner: shim::Mutex::new(BucketInner {
                queue: Vec::new(),
                next_fair: None,
            }),
        }
    }

    fn lock(&self) -> BucketGuard<'_> {
        BucketGuard(self.inner.lock())
    }
}

impl BucketGuard<'_> {
    fn queue(&mut self) -> &mut Vec<Waiter> {
        &mut self.0.queue
    }

    /// Whether this wake should be a fair handoff, advancing the bucket's
    /// fairness timer when it fires.
    fn take_fairness(&mut self) -> bool {
        if !shim::fair_wakes() {
            return false;
        }
        let now = shim::now();
        match self.0.next_fair {
            Some(t) if now < t => false,
            _ => {
                self.0.next_fair = Some(now + FAIR_PERIOD);
                true
            }
        }
    }
}

const NUM_BUCKETS: usize = 64;

struct Buckets([Bucket; NUM_BUCKETS]);

static BUCKETS: Buckets = {
    // `[Bucket::new(); N]` needs Copy; splat through a const initializer.
    // The interior mutability is the point — each array element is its own
    // static bucket, initialized once here.
    #[allow(clippy::declare_interior_mutable_const)]
    const B: Bucket = Bucket::new();
    Buckets([B; NUM_BUCKETS])
};

#[inline]
#[cfg(not(feature = "sli_check"))]
fn bucket_for(addr: usize) -> &'static Bucket {
    // Fibonacci hash over the address (locks are >= word aligned, so the
    // low bits carry no entropy).
    let h = (addr >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    &BUCKETS.0[(h >> (64 - 6)) % NUM_BUCKETS]
}

#[inline]
#[cfg(feature = "sli_check")]
fn bucket_for(_addr: usize) -> &'static Bucket {
    // Under the model checker every execution (including the replay of a
    // candidate failure) runs model threads on fresh stacks, so
    // stack-derived park addresses differ run to run. Hashing them would
    // make bucket *collisions* execution-dependent — schedule
    // nondeterminism the replayer rightly rejects. Collapse to one
    // bucket: deterministic, and the maximal-collision case is exactly
    // the contention the models should explore.
    &BUCKETS.0[0]
}

// Global park/unpark counters, reported by the harness's latch-scaling
// experiment (delta over a measurement window).
static PARKS: AtomicU64 = AtomicU64::new(0);
static UNPARKS: AtomicU64 = AtomicU64::new(0);
static PARK_TIMEOUTS: AtomicU64 = AtomicU64::new(0);
static SPINS: AtomicU64 = AtomicU64::new(0);

/// Record adaptive-spin iterations burned in a raw lock's slow path (the
/// busy half of a contended wait, against `parks`' descheduled half).
pub(crate) fn note_spins(n: u64) {
    if n > 0 {
        // ordering: monotonic statistics counter.
        SPINS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the global parking counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParkingStats {
    /// Threads that actually went to sleep in [`park`].
    pub parks: u64,
    /// Threads woken by [`unpark_one`] / [`unpark_all`].
    pub unparks: u64,
    /// Timed parks that expired without a wakeup.
    pub park_timeouts: u64,
    /// Adaptive-spin iterations burned by contended raw-lock acquires.
    pub spins: u64,
}

impl ParkingStats {
    /// Counter-wise `self - earlier`, for measurement windows.
    pub fn delta(&self, earlier: &ParkingStats) -> ParkingStats {
        ParkingStats {
            parks: self.parks - earlier.parks,
            unparks: self.unparks - earlier.unparks,
            park_timeouts: self.park_timeouts - earlier.park_timeouts,
            spins: self.spins - earlier.spins,
        }
    }
}

/// Snapshot the global park/unpark counters.
pub fn stats() -> ParkingStats {
    // ordering: relaxed loads — advisory snapshot of independent
    // statistics counters.
    ParkingStats {
        parks: PARKS.load(Ordering::Relaxed),
        unparks: UNPARKS.load(Ordering::Relaxed),
        park_timeouts: PARK_TIMEOUTS.load(Ordering::Relaxed),
        spins: SPINS.load(Ordering::Relaxed),
    }
}

/// Park the current thread on `addr` until a matching [`unpark_one`] /
/// [`unpark_all`], the optional `deadline`, or a failed validation.
///
/// Protocol: the bucket lock is taken, `validate` re-checks the wait
/// condition (return `false` to abort without sleeping), the thread is
/// enqueued, the bucket lock is released, `before_sleep` runs (e.g. a
/// condvar releasing its mutex), and the thread sleeps until signalled.
pub fn park(
    addr: usize,
    validate: impl FnOnce() -> bool,
    before_sleep: impl FnOnce(),
    deadline: Option<Instant>,
) -> ParkResult {
    let slot = SLOT.with(Arc::clone);
    // ordering: relaxed — the slot is re-armed before we enqueue under the
    // bucket lock; that lock orders these stores against any waker.
    slot.notified.store(false, Ordering::Relaxed);
    slot.token.store(TOKEN_NORMAL, Ordering::Relaxed); // ordering: see above.
    let bucket = bucket_for(addr);
    {
        let mut guard = bucket.lock();
        if !validate() {
            return ParkResult::Invalid;
        }
        guard.queue().push(Waiter {
            addr,
            slot: Arc::clone(&slot),
        });
    }
    // Under the model checker a failing execution tears threads down by
    // unwinding them out of `shim::park`; this guard dequeues the stale
    // waiter so the process-global bucket never keeps a pointer to a slot
    // whose thread is gone. Production threads never unwind out of park.
    #[cfg(feature = "sli_check")]
    let _unwind_cleanup = UnwindCleanup {
        bucket,
        slot: &slot,
        addr,
    };
    before_sleep();
    PARKS.fetch_add(1, Ordering::Relaxed); // ordering: statistics counter.
    loop {
        match deadline {
            None => shim::park(),
            Some(d) => {
                let now = shim::now();
                if now >= d {
                    // Deadline passed: dequeue ourselves, unless a waker got
                    // there first (then the wakeup is ours to consume).
                    let mut guard = bucket.lock();
                    let q = guard.queue();
                    if let Some(pos) = q
                        .iter()
                        .position(|w| Arc::ptr_eq(&w.slot, &slot) && w.addr == addr)
                    {
                        q.remove(pos);
                        // ordering: statistics counter.
                        PARK_TIMEOUTS.fetch_add(1, Ordering::Relaxed);
                        return ParkResult::TimedOut;
                    }
                    drop(guard);
                    // ordering: acquire pairs with `wake`'s release store
                    // of `notified`, which follows the token store — so the
                    // token read below is the waker's.
                    while !slot.notified.load(Ordering::Acquire) {
                        shim::park();
                    }
                    // ordering: see above.
                    return ParkResult::Unparked(slot.token.load(Ordering::Acquire));
                }
                shim::park_timeout(d - now);
            }
        }
        // ordering: acquire pairs with `wake`'s release (see above).
        if slot.notified.load(Ordering::Acquire) {
            return ParkResult::Unparked(slot.token.load(Ordering::Acquire)); // ordering: see above.
        }
        // Spurious wakeup (or a stale token from an earlier race): re-sleep.
    }
}

/// Removes this thread's queue entry if it unwinds while parked (model
/// checker teardown only; see the construction site in [`park`]).
#[cfg(feature = "sli_check")]
struct UnwindCleanup<'a> {
    bucket: &'static Bucket,
    slot: &'a Arc<ParkSlot>,
    addr: usize,
}

#[cfg(feature = "sli_check")]
impl Drop for UnwindCleanup<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut guard = self.bucket.lock();
            let q = guard.queue();
            if let Some(pos) = q
                .iter()
                .position(|w| Arc::ptr_eq(&w.slot, self.slot) && w.addr == self.addr)
            {
                q.remove(pos);
            }
        }
    }
}

fn wake(w: Waiter, token: usize) {
    UNPARKS.fetch_add(1, Ordering::Relaxed); // ordering: statistics counter.
                                             // ordering: release the token, then release `notified` — the parker's
                                             // acquire of `notified` therefore also observes the token.
    w.slot.token.store(token, Ordering::Release);
    w.slot.notified.store(true, Ordering::Release); // ordering: see above.
    w.slot.thread.unpark();
}

/// Wake the first thread parked on `addr`, if any. `callback` runs while
/// the bucket lock is still held (before the thread is woken), receives
/// whether a thread was dequeued, whether more remain, and the
/// eventual-fairness signal, and returns the token to deliver to the woken
/// thread — raw locks use it to clear/keep their "has parked waiters" bit
/// and to perform direct handoffs atomically with the queue. Returns true
/// when a thread was woken.
pub fn unpark_one(addr: usize, callback: impl FnOnce(UnparkResult) -> usize) -> bool {
    let bucket = bucket_for(addr);
    let mut guard = bucket.lock();
    match guard.queue().iter().position(|w| w.addr == addr) {
        Some(pos) => {
            let be_fair = guard.take_fairness();
            let q = guard.queue();
            let w = q.remove(pos);
            let have_more = q.iter().any(|o| o.addr == addr);
            let token = callback(UnparkResult {
                unparked: true,
                have_more,
                be_fair,
            });
            drop(guard);
            wake(w, token);
            true
        }
        None => {
            callback(UnparkResult {
                unparked: false,
                have_more: false,
                be_fair: false,
            });
            false
        }
    }
}

/// Wake every thread parked on `addr`, returning how many were woken.
pub fn unpark_all(addr: usize) -> usize {
    let bucket = bucket_for(addr);
    let mut guard = bucket.lock();
    // Single stable O(n) sweep (waking happens after the bucket lock is
    // released, so matching waiters must be moved out first).
    let woken: Vec<Waiter> = guard.queue().extract_if(.., |w| w.addr == addr).collect();
    drop(guard);
    let n = woken.len();
    for w in woken {
        wake(w, TOKEN_NORMAL);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn invalid_validation_never_sleeps() {
        let x = 0u64;
        let addr = &x as *const _ as usize;
        let r = park(addr, || false, || {}, None);
        assert_eq!(r, ParkResult::Invalid);
    }

    #[test]
    fn timed_park_expires() {
        let x = 0u64;
        let addr = &x as *const _ as usize;
        let t0 = Instant::now();
        let r = park(
            addr,
            || true,
            || {},
            Some(Instant::now() + Duration::from_millis(10)),
        );
        assert_eq!(r, ParkResult::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn unpark_one_wakes_exactly_one() {
        static FLAG: AtomicUsize = AtomicUsize::new(0);
        let addr = &FLAG as *const _ as usize;
        let barrier = Arc::new(Barrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                b.wait();
                park(addr, || FLAG.load(Ordering::SeqCst) == 0, || {}, None)
            }));
        }
        barrier.wait();
        // Retry until one waiter is queued and woken (the threads may not
        // have parked yet; global counters are shared with other tests, so
        // poll the queue through unpark_one itself).
        let mut woke_first = false;
        for _ in 0..1_000 {
            if unpark_one(addr, |_| TOKEN_NORMAL) {
                woke_first = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(woke_first, "first waiter never parked");
        // Exactly one returned; the other stays parked (FLAG still 0).
        std::thread::sleep(Duration::from_millis(20));
        let finished = handles.iter().filter(|h| h.is_finished()).count();
        assert_eq!(finished, 1);
        FLAG.store(1, Ordering::SeqCst);
        // The second waiter either parked (unpark_all wakes it) or now
        // fails validation against FLAG; both resolve promptly.
        unpark_all(addr);
        for h in handles {
            let r = h.join().unwrap();
            assert!(r.unparked() || r == ParkResult::Invalid, "{r:?}");
        }
    }

    #[test]
    fn no_missed_wakeup_race() {
        // Hammer the enqueue/unpark race: a "releaser" flips a flag and
        // unparks; the parker validates the flag under the bucket lock. If
        // the protocol ever missed a wakeup the parker would hang forever.
        for round in 0..200 {
            let flag = Arc::new(AtomicBool::new(false));
            let addr = Arc::as_ptr(&flag) as usize;
            let f2 = Arc::clone(&flag);
            let parker =
                std::thread::spawn(move || park(addr, || !f2.load(Ordering::SeqCst), || {}, None));
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            flag.store(true, Ordering::SeqCst);
            unpark_one(addr, |_| TOKEN_NORMAL);
            let r = parker.join().unwrap();
            assert!(r.unparked() || r == ParkResult::Invalid, "{r:?}");
        }
    }

    #[test]
    fn many_thread_park_unpark_stress() {
        // N threads lock-step through generations gated by park/unpark_all:
        // each round, every parker must observe the generation advance. A
        // missed wakeup strands a parker in the old generation; the 5 s
        // deadline converts that hang into a hard failure.
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        let gen_counter = Arc::new(AtomicUsize::new(0));
        let addr = Arc::as_ptr(&gen_counter) as usize;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let gen_counter = Arc::clone(&gen_counter);
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    while gen_counter.load(Ordering::SeqCst) <= round {
                        let r = park(
                            addr,
                            || gen_counter.load(Ordering::SeqCst) <= round,
                            || {},
                            Some(Instant::now() + Duration::from_secs(5)),
                        );
                        assert_ne!(r, ParkResult::TimedOut, "missed wakeup in round {round}");
                    }
                }
            }));
        }
        for round in 0..ROUNDS {
            gen_counter.store(round + 1, Ordering::SeqCst);
            unpark_all(addr);
            if round % 16 == 0 {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn distinct_addresses_do_not_cross_wake() {
        let a = 0u64;
        let b = 0u64;
        let addr_a = &a as *const _ as usize;
        let addr_b = &b as *const _ as usize;
        let h = std::thread::spawn(move || {
            park(
                addr_a,
                || true,
                || {},
                Some(Instant::now() + Duration::from_millis(50)),
            )
        });
        std::thread::sleep(Duration::from_millis(10));
        // Waking b must not disturb the waiter on a (even on bucket
        // collision, matching is by address).
        unpark_all(addr_b);
        assert_eq!(h.join().unwrap(), ParkResult::TimedOut);
    }
}
