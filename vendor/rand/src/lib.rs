//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in covering the surface the SLI crates use:
//! `rngs::SmallRng`, `SeedableRng::{seed_from_u64, from_entropy}`, and the
//! `Rng` extension trait with `gen`, `gen_range` (half-open and inclusive
//! integer ranges), and `gen_bool`.
//!
//! The generator is xoshiro256++ (same family the real `SmallRng` uses on
//! 64-bit targets): fast, deterministic per seed, and statistically sound
//! for workload generation — not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS/system entropy (here: clock + address entropy —
    /// good enough for non-cryptographic workload seeding).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack.rotate_left(32))
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Produce a uniformly random value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` (`span > 0`) without modulo bias beyond
/// what a 64-bit multiply-shift reduction introduces (negligible here).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift reduction.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    /// Uniformly random value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast non-cryptographic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Thread-local convenience RNG.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::from_entropy()
}

/// Sample a uniformly random value of an inferred type from [`thread_rng`].
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(0..1usize);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
    }
}
