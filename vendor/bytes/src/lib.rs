//! Vendored, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in. `Bytes` is a cheaply clonable immutable byte
//! buffer (an `Arc<[u8]>` slice view), `BytesMut` a growable buffer, and
//! `BufMut` the little-endian append trait — exactly the surface the WAL
//! and storage crates use.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply clonable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Borrowing view of a static slice (no allocation beyond the Arc).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            start: 0,
            end: v.len(),
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

fn fmt_bytes(bytes: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    write!(f, "\"")
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_bytes(self, f)
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_bytes(self, f)
    }
}

/// Growable byte buffer supporting little-endian appends.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Remove all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Take the entire contents, leaving `self` empty (keeps capacity in
    /// the detached half, like `bytes::BytesMut::split`).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Split off the first `at` bytes, leaving the rest in `self`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Freeze into an immutable, cheaply clonable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

/// Little-endian append trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_allocation() {
        let b = Bytes::copy_from_slice(b"hello world");
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        assert_eq!(b.len(), 11);
    }

    #[test]
    fn bytesmut_split_moves_contents() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u64_le(7);
        m.put_u8(9);
        let taken = m.split();
        assert_eq!(taken.len(), 9);
        assert!(m.is_empty());
        assert_eq!(taken[0], 7);
        assert_eq!(taken[8], 9);
    }

    #[test]
    fn freeze_round_trips() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abc");
        let b = m.freeze();
        assert_eq!(b, *b"abc");
        assert_eq!(b.to_vec(), b"abc".to_vec());
    }
}
