//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in. It implements the classic
//! `criterion_group!`/`criterion_main!` + `Criterion::bench_function`
//! surface with a simple but honest measurement loop: per-iteration timing
//! over a warm-up and a measurement window, summarized by
//! [`SampleStats`] — mean, trimmed mean (Tukey-fence outlier rejection),
//! p50 / p95 / p99, and standard deviation — so A/B microbenches report
//! more than raw samples. No regression machinery, plots, or HTML reports.
//!
//! Respects `--bench`-style harness flags well enough for
//! `cargo bench` / `cargo test --benches` to run, and accepts an optional
//! substring filter argument like real criterion.

use std::time::{Duration, Instant};

/// Summary statistics over one benchmark's per-iteration samples (all
/// values in nanoseconds).
#[derive(Clone, Debug, PartialEq)]
pub struct SampleStats {
    /// Number of samples collected.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Mean over the samples inside the Tukey fences (`q1 - 1.5·iqr ..
    /// q3 + 1.5·iqr`) — robust to scheduler spikes on saturated hosts.
    pub trimmed_mean: f64,
    /// Samples outside the Tukey fences, excluded from `trimmed_mean`.
    pub outliers: usize,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl SampleStats {
    /// Summarize a set of samples. Returns `None` for an empty set.
    pub fn from_samples(samples: &[Duration]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = ns.len();
        let mean = ns.iter().sum::<f64>() / n as f64;
        let var = ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let (q1, q3) = (percentile(&ns, 25.0), percentile(&ns, 75.0));
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let inliers: Vec<f64> = ns.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
        // The fences always contain the interquartile range, so at least
        // half the samples survive and the trimmed mean is well-defined.
        let trimmed_mean = inliers.iter().sum::<f64>() / inliers.len() as f64;
        Some(SampleStats {
            n,
            mean,
            trimmed_mean,
            outliers: n - inliers.len(),
            p50: percentile(&ns, 50.0),
            p95: percentile(&ns, 95.0),
            p99: percentile(&ns, 99.0),
            std_dev: var.sqrt(),
        })
    }
}

/// Linear-interpolated percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (pct / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Opaque black box preventing the optimizer from deleting a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver: collects per-iteration samples for one target.
pub struct Bencher {
    samples: Vec<Duration>,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly: warm-up, then sample until the
    /// measurement window closes or `sample_size` batches are collected.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also used to size batches so one batch is ~100µs.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = if warm_iters == 0 {
            Duration::from_micros(100)
        } else {
            self.warm_up_time / (warm_iters as u32).max(1)
        };
        let batch = (Duration::from_micros(100).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;

        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement_time && self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
        if self.samples.is_empty() {
            // Degenerate window: record at least one sample.
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Top-level benchmark configuration and registry (subset of
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    list_only: bool,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut filter = None;
        let mut list_only = false;
        let mut test_mode = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--profile-time" => {}
                "--list" => list_only = true,
                "--test" => test_mode = true,
                a if a.starts_with("--") => {
                    // Flag with a value (e.g. --save-baseline x): skip it.
                    if i + 1 < args.len() && !args[i + 1].starts_with('-') {
                        i += 1;
                    }
                }
                a => filter = Some(a.to_string()),
            }
            i += 1;
        }
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter,
            list_only,
            test_mode,
        }
    }
}

impl Criterion {
    /// Target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Length of the measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Length of the warm-up window.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark target, printing its statistics (delegates to
    /// [`Criterion::bench_function_stats`]).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        if self.list_only {
            let matches = self
                .filter
                .as_ref()
                .is_none_or(|needle| id.contains(needle.as_str()));
            if matches {
                println!("{id}: bench");
            }
            return self;
        }
        if let Some(stats) = self.bench_function_stats(id, f) {
            let per_sec = if stats.trimmed_mean > 0.0 {
                (1e9 / stats.trimmed_mean) as u64
            } else {
                0
            };
            println!(
                "{id:<48} mean {:>10.0} ns  trim {:>10.0} ns (-{} outl)  p50 {:>10.0} ns  \
                 p95 {:>10.0} ns  p99 {:>10.0} ns  sd {:>8.0}  ({per_sec}/s)",
                stats.mean,
                stats.trimmed_mean,
                stats.outliers,
                stats.p50,
                stats.p95,
                stats.p99,
                stats.std_dev
            );
        }
        self
    }

    /// Run one benchmark target and return its statistics (`None` when the
    /// target was filtered out or `--list` is active).
    pub fn bench_function_stats<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut f: F,
    ) -> Option<SampleStats> {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return None;
            }
        }
        if self.list_only {
            return None;
        }
        let (measurement_time, warm_up_time) = if self.test_mode {
            // `cargo test --benches` smoke mode: one quick pass.
            (Duration::from_millis(1), Duration::from_millis(1))
        } else {
            (self.measurement_time, self.warm_up_time)
        };
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            measurement_time,
            warm_up_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        SampleStats::from_samples(&b.samples)
    }

    /// Final summary hook (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_summarize_known_samples() {
        let samples: Vec<Duration> = (1..=100u64).map(Duration::from_nanos).collect();
        let s = SampleStats::from_samples(&samples).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert_eq!(s.outliers, 0, "a uniform ramp has no Tukey outliers");
        assert!((s.trimmed_mean - s.mean).abs() < 1e-9);
        // Population sd of 1..=100 is sqrt((100^2-1)/12).
        assert!((s.std_dev - (9999.0f64 / 12.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn trimmed_mean_rejects_scheduler_spikes() {
        // 99 quiet samples around 100ns plus one 1ms spike: the raw mean
        // is dragged past 10µs, the trimmed mean stays honest.
        let mut samples: Vec<Duration> = (0..99)
            .map(|i| Duration::from_nanos(95 + (i % 11)))
            .collect();
        samples.push(Duration::from_millis(1));
        let s = SampleStats::from_samples(&samples).unwrap();
        assert!(s.mean > 10_000.0, "raw mean dominated by the spike");
        assert!(
            s.trimmed_mean < 110.0,
            "trimmed mean rejects it: {}",
            s.trimmed_mean
        );
        assert_eq!(s.outliers, 1);
        assert!(s.p50 < 110.0);
    }

    #[test]
    fn stats_edge_cases() {
        assert_eq!(SampleStats::from_samples(&[]), None);
        let one = SampleStats::from_samples(&[Duration::from_nanos(42)]).unwrap();
        assert_eq!(one.n, 1);
        assert_eq!(one.mean, 42.0);
        assert_eq!(one.p99, 42.0);
        assert_eq!(one.trimmed_mean, 42.0);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn bench_function_stats_returns_summary() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let stats = c
            .bench_function_stats("smoke/stats", |b| b.iter(|| black_box(1u64 + 1)))
            .expect("unfiltered run yields stats");
        assert!(stats.n >= 1);
        assert!(stats.mean > 0.0);
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut n = 0u64;
        c.bench_function("smoke/increment", |b| {
            b.iter(|| {
                n = n.wrapping_add(1);
                black_box(n)
            })
        });
        assert!(n > 0);
    }
}
