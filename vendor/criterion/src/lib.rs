//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in. It implements the classic
//! `criterion_group!`/`criterion_main!` + `Criterion::bench_function`
//! surface with a simple but honest measurement loop: per-iteration timing
//! over a warm-up and a measurement window, reporting mean / p50 / p99
//! nanoseconds and iterations per second. No statistical regression
//! machinery, plots, or HTML reports.
//!
//! Respects `--bench`-style harness flags well enough for
//! `cargo bench` / `cargo test --benches` to run, and accepts an optional
//! substring filter argument like real criterion.

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver: collects per-iteration samples for one target.
pub struct Bencher {
    samples: Vec<Duration>,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly: warm-up, then sample until the
    /// measurement window closes or `sample_size` batches are collected.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also used to size batches so one batch is ~100µs.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = if warm_iters == 0 {
            Duration::from_micros(100)
        } else {
            self.warm_up_time / (warm_iters as u32).max(1)
        };
        let batch = (Duration::from_micros(100).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;

        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement_time && self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
        if self.samples.is_empty() {
            // Degenerate window: record at least one sample.
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Top-level benchmark configuration and registry (subset of
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    list_only: bool,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut filter = None;
        let mut list_only = false;
        let mut test_mode = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--profile-time" => {}
                "--list" => list_only = true,
                "--test" => test_mode = true,
                a if a.starts_with("--") => {
                    // Flag with a value (e.g. --save-baseline x): skip it.
                    if i + 1 < args.len() && !args[i + 1].starts_with('-') {
                        i += 1;
                    }
                }
                a => filter = Some(a.to_string()),
            }
            i += 1;
        }
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter,
            list_only,
            test_mode,
        }
    }
}

impl Criterion {
    /// Target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Length of the measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Length of the warm-up window.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark target.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if self.list_only {
            println!("{id}: bench");
            return self;
        }
        let (measurement_time, warm_up_time) = if self.test_mode {
            // `cargo test --benches` smoke mode: one quick pass.
            (Duration::from_millis(1), Duration::from_millis(1))
        } else {
            (self.measurement_time, self.warm_up_time)
        };
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            measurement_time,
            warm_up_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut ns: Vec<u128> = b.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        let p50 = ns[ns.len() / 2];
        let p99 = ns[((ns.len() * 99) / 100).min(ns.len() - 1)];
        let per_sec = 1_000_000_000u128.checked_div(mean).unwrap_or(0);
        println!("{id:<48} mean {mean:>10} ns  p50 {p50:>10} ns  p99 {p99:>10} ns  ({per_sec}/s)");
        self
    }

    /// Final summary hook (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut n = 0u64;
        c.bench_function("smoke/increment", |b| {
            b.iter(|| {
                n = n.wrapping_add(1);
                black_box(n)
            })
        });
        assert!(n > 0);
    }
}
