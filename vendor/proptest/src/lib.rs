//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in: random-input property testing with the familiar
//! `proptest! { fn prop(x in strategy) { ... } }` macro surface, `Strategy`
//! combinators (`prop_map`, `prop_oneof!`, `Just`, ranges, collections,
//! tuples, `any::<T>()`), and `prop_assert*` macros.
//!
//! Differences from real proptest: failing inputs are *not* shrunk (the
//! failing case's seed and debug rendering are reported instead), and
//! strategies are simple random generators rather than value trees. Case
//! counts honour `ProptestConfig::with_cases` and can be globally capped
//! with the `PROPTEST_CASES` environment variable (the repo's CI sets a
//! small value to keep property suites fast; see README).

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// Random source handed to strategies.
pub type TestRng = SmallRng;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values, retrying until `f` accepts one.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Boxed strategy alias mirroring `proptest::strategy::BoxedStrategy`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Strategy producing a single constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

/// Types with a canonical "any value" strategy (mirrors `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's full domain.
#[derive(Clone, Debug, Default)]
pub struct FullDomain<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> Self::Strategy {
                FullDomain { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The canonical strategy for `T`: the full domain for integers and `bool`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases (before the `PROPTEST_CASES`
    /// environment cap).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that, but the env cap below
        // lets CI dial the whole suite down without editing tests.
        ProptestConfig { cases: 256 }
    }
}

/// Effective case count: the configured count, capped by the
/// `PROPTEST_CASES` environment variable when set.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(cap) => config.cases.min(cap.max(1)),
        None => config.cases,
    }
}

/// Per-case RNG: deterministic by default (case index seeds the stream) so
/// failures are reproducible; set `PROPTEST_RNG=entropy` to randomise.
pub fn case_rng(case: u32) -> TestRng {
    let base = match std::env::var("PROPTEST_RNG").as_deref() {
        Ok("entropy") => {
            use rand::{RngCore as _, SeedableRng as _};
            SmallRng::from_entropy().next_u64()
        }
        _ => 0x5117_c0de,
    };
    SmallRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `proptest::collection::vec`: vector of `element` values with a
        /// length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy choosing uniformly from a fixed set.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }

        /// `proptest::sample::select`: choose uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of empty set");
            Select { options }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Uniform `bool` strategy.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen()
            }
        }

        /// `proptest::bool::ANY`.
        pub const ANY: Any = Any;
    }

    /// Numeric strategies (ranges already implement `Strategy` directly).
    pub mod num {}
}

/// Pick one of several strategies per generated value, uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: Vec<$crate::BoxedStrategy<_>> = vec![
            $(Box::new($strat) as $crate::BoxedStrategy<_>),+
        ];
        $crate::OneOf { arms }
    }};
}

/// Output of [`prop_oneof!`]: uniform choice between boxed strategies.
pub struct OneOf<T> {
    /// The candidate strategies.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Assert inside a property, reporting the failing message on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)) => {};
    (@with_config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::effective_cases(&config);
            for case in 0..cases {
                let mut rng = $crate::case_rng(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs up front: the body may consume them by move.
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let run = || {
                    $body
                };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!("proptest case {case}/{cases} failed with inputs:{inputs}");
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    // With a leading config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    // Without: use the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3..10u32, y in 0i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..=4).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop::collection::vec(
                prop_oneof![Just(1u8), (5u8..7).prop_map(|x| x * 2)],
                1..5,
            ),
            b in prop::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x == 1u8 || x == 10u8 || x == 12u8);
            }
            // `b` exercises `prop::bool::ANY`; any generated value is valid.
            let _ = b;
        }

        #[test]
        fn select_draws_from_set(m in prop::sample::select(vec![2u8, 4, 8])) {
            prop_assert!([2u8, 4, 8].contains(&m));
        }
    }

    #[test]
    fn env_cap_bounds_cases() {
        let cfg = ProptestConfig::with_cases(256);
        // Without the env var this returns the configured count.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::effective_cases(&cfg), 256);
        } else {
            assert!(crate::effective_cases(&cfg) <= 256);
        }
    }
}
