//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in: random-input property testing with the familiar
//! `proptest! { fn prop(x in strategy) { ... } }` macro surface, `Strategy`
//! combinators (`prop_map`, `prop_oneof!`, `Just`, ranges, collections,
//! tuples, `any::<T>()`), and `prop_assert*` macros.
//!
//! Differences from real proptest: strategies are simple random generators
//! rather than value trees, and shrinking is a lightweight greedy pass
//! instead of tree traversal — integer strategies halve toward the range
//! start, `collection::vec` truncates (half, then minus-one) and recurses
//! into elements, `Just`/`prop_map`/`prop_oneof` don't shrink. On failure
//! the macro re-runs shrink candidates (panic hook silenced) up to a
//! budget (`PROPTEST_SHRINK_BUDGET`, default 512) and reports the smallest
//! still-failing input before resuming the original panic. Case counts
//! honour `ProptestConfig::with_cases` and can be globally capped with the
//! `PROPTEST_CASES` environment variable (the repo's CI sets a small value
//! to keep property suites fast; see README).

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// Random source handed to strategies.
pub type TestRng = SmallRng;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly "smaller" variants of a failing value, most
    /// aggressive first. The default (no candidates) disables shrinking
    /// for this strategy; integer ranges and `collection::vec` override
    /// it. Candidates must stay within the strategy's domain.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values, retrying until `f` accepts one.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Boxed strategy alias mirroring `proptest::strategy::BoxedStrategy`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Forward the inner candidates, keeping only in-domain ones.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|c| (self.f)(c))
            .collect()
    }
}

/// Strategy producing a single constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Halving shrink for an integer toward the range's low end: the low end
/// itself, the midpoint, then value-minus-one — aggressive first.
macro_rules! int_shrink_toward {
    ($lo:expr, $v:expr) => {{
        let lo = $lo;
        let v = *$v;
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            if let Some(d) = v.checked_sub(lo) {
                let mid = lo.wrapping_add(d / 2);
                if mid != lo && mid != v {
                    out.push(mid);
                }
            }
            let dec = v.wrapping_sub(1);
            if dec != lo && !out.contains(&dec) {
                out.push(dec);
            }
        }
        out
    }};
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!(self.start, value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!(*self.start(), value)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        // The `Clone` bounds exist for `shrink` (component-wise: each
        // candidate replaces one component, cloning the rest); every value
        // type used in this workspace's properties is `Clone`.
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut t = value.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

/// Types with a canonical "any value" strategy (mirrors `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's full domain.
#[derive(Clone, Debug, Default)]
pub struct FullDomain<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Halve toward zero (works for signed and unsigned).
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let mid = v / 2;
                    if mid != 0 && mid != v {
                        out.push(mid);
                    }
                }
                out
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> Self::Strategy {
                FullDomain { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullDomain<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;
    fn arbitrary() -> Self::Strategy {
        FullDomain {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T`: the full domain for integers and `bool`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases (before the `PROPTEST_CASES`
    /// environment cap).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that, but the env cap below
        // lets CI dial the whole suite down without editing tests.
        ProptestConfig { cases: 256 }
    }
}

/// Effective case count: the configured count, capped by the
/// `PROPTEST_CASES` environment variable when set.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(cap) => config.cases.min(cap.max(1)),
        None => config.cases,
    }
}

/// Total shrink candidates tried per failing case: `PROPTEST_SHRINK_BUDGET`
/// (default 512); 0 disables shrinking.
pub fn shrink_budget() -> usize {
    std::env::var("PROPTEST_SHRINK_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(512)
}

/// Greedily minimize a failing input: adopt the first shrink candidate
/// that still fails and restart from it, until no candidate fails or the
/// budget runs out. Returns the smallest still-failing value and the
/// number of candidates tried. `fails` must run the property with panics
/// caught (the `proptest!` macro silences the panic hook around the whole
/// loop so candidate re-runs don't spam stderr).
pub fn minimize<S: Strategy>(
    strat: &S,
    failing: S::Value,
    budget: usize,
    mut fails: impl FnMut(&S::Value) -> bool,
) -> (S::Value, usize) {
    let mut best = failing;
    let mut tried = 0usize;
    'outer: while tried < budget {
        for cand in strat.shrink(&best) {
            if tried >= budget {
                break 'outer;
            }
            tried += 1;
            if fails(&cand) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    (best, tried)
}

/// Identity coercion giving a case-runner closure the expected parameter
/// type `S::Value` (so the `proptest!` macro's body type-checks against
/// the strategy tuple's structural value type before any call site).
pub fn runner_for<S: Strategy, R, F: Fn(S::Value) -> R>(_strat: &S, f: F) -> F {
    f
}

/// The standard library's boxed panic-hook type.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// RAII panic-hook silencer for the shrink loop (candidate re-runs panic
/// on purpose; their backtraces are noise). Process-global: a concurrent
/// failing test in another thread is muted too for the duration, which is
/// acceptable for a diagnostics pass that only runs on failure.
pub struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    /// Install a no-op panic hook, remembering the previous one.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Per-case RNG: deterministic by default (case index seeds the stream) so
/// failures are reproducible; set `PROPTEST_RNG=entropy` to randomise.
pub fn case_rng(case: u32) -> TestRng {
    let base = match std::env::var("PROPTEST_RNG").as_deref() {
        Ok("entropy") => {
            use rand::{RngCore as _, SeedableRng as _};
            SmallRng::from_entropy().next_u64()
        }
        _ => 0x5117_c0de,
    };
    SmallRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
            fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
                let min = self.len.start;
                let n = value.len();
                let mut out: Vec<Vec<S::Value>> = Vec::new();
                // Truncation passes, aggressive first: half, then one less.
                if n > min {
                    let half = (n / 2).max(min);
                    if half < n {
                        out.push(value[..half].to_vec());
                    }
                    if n - 1 > half {
                        out.push(value[..n - 1].to_vec());
                    }
                }
                // Element-wise shrink (bounded so candidate lists stay
                // small on long vectors).
                for i in 0..n.min(16) {
                    for cand in self.element.shrink(&value[i]).into_iter().take(2) {
                        let mut v = value.clone();
                        v[i] = cand;
                        out.push(v);
                    }
                }
                out
            }
        }

        /// `proptest::collection::vec`: vector of `element` values with a
        /// length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy choosing uniformly from a fixed set.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }

        /// `proptest::sample::select`: choose uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of empty set");
            Select { options }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Uniform `bool` strategy.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen()
            }
            fn shrink(&self, value: &bool) -> Vec<bool> {
                if *value {
                    vec![false]
                } else {
                    Vec::new()
                }
            }
        }

        /// `proptest::bool::ANY`.
        pub const ANY: Any = Any;
    }

    /// Numeric strategies (ranges already implement `Strategy` directly).
    pub mod num {}
}

/// Pick one of several strategies per generated value, uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: Vec<$crate::BoxedStrategy<_>> = vec![
            $(Box::new($strat) as $crate::BoxedStrategy<_>),+
        ];
        $crate::OneOf { arms }
    }};
}

/// Output of [`prop_oneof!`]: uniform choice between boxed strategies.
pub struct OneOf<T> {
    /// The candidate strategies.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Assert inside a property, reporting the failing message on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)) => {};
    (@with_config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::effective_cases(&config);
            // The strategies as one tuple strategy, so failing inputs can
            // be shrunk component-wise. Requires `Clone` value types.
            let strat = ($(($strat),)+);
            for case in 0..cases {
                let mut rng = $crate::case_rng(case);
                let initial = $crate::Strategy::generate(&strat, &mut rng);
                // Takes the tuple by value (callers clone): a by-reference
                // closure would be monomorphic in the reference lifetime
                // and could not be re-invoked on shrink candidates.
                // `runner_for` pins the parameter to the strategy tuple's
                // value type so the body type-checks immediately.
                let run_tuple = $crate::runner_for(&strat, |vals| {
                    let ($($arg,)+) = vals;
                    $body
                });
                let failed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || run_tuple(::core::clone::Clone::clone(&initial)),
                ))
                .is_err();
                if failed {
                    // Minimize with the panic hook silenced (candidate
                    // re-runs panic by design), then report the smallest
                    // still-failing input and resume its panic.
                    let (minimal, tried) = {
                        let _quiet = $crate::QuietPanics::new();
                        $crate::minimize(
                            &strat,
                            ::core::clone::Clone::clone(&initial),
                            $crate::shrink_budget(),
                            |cand| {
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                    || run_tuple(::core::clone::Clone::clone(cand)),
                                ))
                                .is_err()
                            },
                        )
                    };
                    {
                        let ($($arg,)+) = &minimal;
                        eprintln!(
                            concat!(
                                "proptest case {}/{} failed; minimal failing input \
                                 after {} shrink attempts:",
                                $("\n  ", stringify!($arg), " = {:?}"),+
                            ),
                            case, cases, tried, $(&$arg),+
                        );
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || run_tuple(::core::clone::Clone::clone(&minimal)),
                    )) {
                        Err(panic) => std::panic::resume_unwind(panic),
                        // A flaky (nondeterministic) body can stop failing
                        // on the re-run; fail the test all the same.
                        Ok(_) => panic!(
                            "proptest case {case} failed but its minimized \
                             input no longer reproduces (flaky property?)"
                        ),
                    }
                }
            }
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    // With a leading config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    // Without: use the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3..10u32, y in 0i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..=4).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop::collection::vec(
                prop_oneof![Just(1u8), (5u8..7).prop_map(|x| x * 2)],
                1..5,
            ),
            b in prop::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x == 1u8 || x == 10u8 || x == 12u8);
            }
            // `b` exercises `prop::bool::ANY`; any generated value is valid.
            let _ = b;
        }

        #[test]
        fn select_draws_from_set(m in prop::sample::select(vec![2u8, 4, 8])) {
            prop_assert!([2u8, 4, 8].contains(&m));
        }
    }

    #[test]
    fn shrinking_minimizes_integers_and_vectors() {
        // Pretend property: fails whenever x >= 50 (the vec is irrelevant,
        // so it must shrink away entirely).
        let strat = (3..100u32, crate::prop::collection::vec(0..100u32, 0..20));
        let failing = (97u32, vec![3u32, 80, 2, 9, 61]);
        let (min, tried) = crate::minimize(&strat, failing, 512, |(x, _)| *x >= 50);
        assert_eq!(min.0, 50, "integer halving must land on the boundary");
        assert!(min.1.is_empty(), "irrelevant vec must truncate away");
        assert!(tried > 0 && tried <= 512);
    }

    #[test]
    fn shrink_candidates_stay_in_domain() {
        let r = 5..40u32;
        for v in [6u32, 23, 39] {
            for c in crate::Strategy::shrink(&r, &v) {
                assert!(r.contains(&c), "candidate {c} outside {r:?}");
                assert!(c < v, "candidate {c} not smaller than {v}");
            }
        }
        assert!(
            crate::Strategy::shrink(&r, &5).is_empty(),
            "min is terminal"
        );
        let ri = 2..=9i64;
        for c in crate::Strategy::shrink(&ri, &9) {
            assert!(ri.contains(&c));
        }
        let vs = crate::prop::collection::vec(0..10u8, 2..8);
        let v = vec![9u8, 1, 7, 3, 2];
        for c in crate::Strategy::shrink(&vs, &v) {
            assert!(c.len() >= 2, "truncation respects the min length");
        }
    }

    #[test]
    fn shrink_budget_defaults_and_parses() {
        if std::env::var("PROPTEST_SHRINK_BUDGET").is_err() {
            assert_eq!(crate::shrink_budget(), 512);
        }
    }

    #[test]
    fn env_cap_bounds_cases() {
        let cfg = ProptestConfig::with_cases(256);
        // Without the env var this returns the configured count.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::effective_cases(&cfg), 256);
        } else {
            assert!(crate::effective_cases(&cfg) <= 256);
        }
    }
}
