//! `sli-lint`: the repo's concurrency-hygiene gate.
//!
//! Dependency-free static analysis (substring + brace tracking — "AST
//! lite", deliberately not `syn`: the container has no registry access
//! and the rules below don't need type information). Five rules, all
//! scoped to library code of the first-party crates plus the vendored
//! `parking_lot` (the other vendored crates are third-party snapshots):
//!
//! 1. **safety-comment** — every `unsafe` keyword must carry a
//!    `// SAFETY:` justification (or a `# Safety` doc section for
//!    `unsafe trait`/`unsafe fn` declarations) on the same line or in the
//!    comment block above.
//! 2. **ordering-comment** — every non-`SeqCst` atomic ordering
//!    (`Relaxed`, `Acquire`, `Release`, `AcqRel`) must carry an
//!    `// ordering:` justification nearby. Test code is exempt: stress
//!    tests legitimately use `Relaxed` counters.
//! 3. **sleep** — no `thread::sleep` in library code. Sleeping is how
//!    lost wakeups hide; production waits must go through the parker.
//!    Tests, benches, examples and the experiment harness are exempt.
//! 4. **latch-across-park** — textual heuristic: a live lock/latch guard
//!    binding in scope when a `park(`/`park_timeout(` call appears. A
//!    thread that parks while holding a latch deadlocks the tree.
//! 5. **durability** — in recovery code (files whose path contains
//!    `recovery`), every direct storage mutation (`heap.`/`primary.`/
//!    `ordered.` followed by a mutator method) must carry a
//!    `// durability:` comment explaining why mutating pages outside a
//!    transaction is safe. One comment covers the contiguous mutation
//!    cluster it precedes.
//!
//! A site can be suppressed with `// sli-lint: allow(<rule>)` on the same
//! line or the line above — the suppression is itself greppable, so the
//! escape hatch leaves an audit trail.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Lexing: split each source line into code and comment channels
// ---------------------------------------------------------------------------

/// One source line, split into its code text (comments removed) and its
/// comment text (everything inside `//`, `///`, `//!` or `/* … */` on
/// that line). String literal contents are dropped from the code channel
/// so keywords inside them cannot trip the rules.
#[derive(Debug, Default, Clone)]
struct SplitLine {
    code: String,
    comment: String,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    /// Inside `/* … */`; Rust block comments nest, hence the depth.
    Block(u32),
    /// Inside a string literal (`"`).
    Str,
    /// Inside a raw string; the payload is the number of `#`s.
    RawStr(u32),
}

/// Split `src` into per-line code/comment channels. Handles line and
/// (nested) block comments, string/char literals, raw strings, and the
/// lifetime-vs-char-literal ambiguity well enough for keyword scanning.
fn split_lines(src: &str) -> Vec<SplitLine> {
    let mut out = Vec::new();
    let mut state = LexState::Normal;
    for line in src.lines() {
        let bytes = line.as_bytes();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            match state {
                LexState::Block(depth) => {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        state = if depth > 1 {
                            LexState::Block(depth - 1)
                        } else {
                            LexState::Normal
                        };
                        i += 2;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(bytes[i] as char);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if bytes[i] == b'\\' {
                        i += 2; // skip the escaped byte
                    } else if bytes[i] == b'"' {
                        state = LexState::Normal;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if bytes[i] == b'"' {
                        let h = hashes as usize;
                        if bytes.len() >= i + 1 + h
                            && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                        {
                            state = LexState::Normal;
                            code.push('"');
                            i += 1 + h;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Normal => match bytes[i] {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        comment.push_str(&line[i + 2..]);
                        i = bytes.len();
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = LexState::Block(1);
                        i += 2;
                    }
                    b'"' => {
                        state = LexState::Str;
                        code.push('"');
                        i += 1;
                    }
                    b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                        // Possible raw string: r"…" or r#"…"#.
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&b'#') {
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'"') {
                            state = LexState::RawStr((j - i - 1) as u32);
                            code.push('"');
                            i = j + 1;
                        } else {
                            code.push('r');
                            i += 1;
                        }
                    }
                    b'\'' => {
                        // Char literal vs lifetime: a literal closes with a
                        // `'` within a few bytes (`'a'`, `'\n'`, `'\u{..}'`).
                        let rest = &bytes[i + 1..];
                        let close = if rest.first() == Some(&b'\\') {
                            rest.iter().skip(1).position(|&b| b == b'\'').map(|p| p + 1)
                        } else {
                            (rest.len() >= 2 && rest[1] == b'\'').then_some(1)
                        };
                        match close {
                            Some(p) => i += p + 2, // skip the whole literal
                            None => {
                                code.push('\'');
                                i += 1;
                            }
                        }
                    }
                    b => {
                        code.push(b as char);
                        i += 1;
                    }
                },
            }
        }
        out.push(SplitLine { code, comment });
    }
    out
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    SafetyComment,
    OrderingComment,
    Sleep,
    LatchAcrossPark,
    Durability,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::OrderingComment => "ordering-comment",
            Rule::Sleep => "sleep",
            Rule::LatchAcrossPark => "latch-across-park",
            Rule::Durability => "durability",
        }
    }
}

#[derive(Debug)]
struct Finding {
    file: PathBuf,
    /// 1-based line number.
    line: usize,
    rule: Rule,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

/// How a file is classified for rule exemptions.
#[derive(Debug, Clone, Copy)]
struct FileClass {
    /// Test/bench/example/harness code: exempt from the ordering and
    /// sleep rules (stress tests poll; harness drivers pace phases).
    relaxed: bool,
}

fn classify(rel: &str) -> FileClass {
    let relaxed = rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("crates/harness/")
        || rel.contains("crates/bench/");
    FileClass { relaxed }
}

/// Mark every line inside a `#[cfg(test)]`-gated item (or a `#[test]`
/// function) so the ordering/sleep rules can skip test code embedded in
/// lib files. Brace-tracked from the attribute to the close of the item
/// it gates.
fn test_regions(lines: &[SplitLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        let is_gate = code.contains("#[cfg(test)]")
            || code.contains("#[cfg(all(test")
            || code.contains("#[test]")
            || code.contains("#[bench]");
        if !is_gate {
            i += 1;
            continue;
        }
        // Scan forward to the item's opening brace, then to its close.
        let mut depth = 0i32;
        let mut opened = false;
        let mut bare_item = false;
        let mut j = i;
        while j < lines.len() {
            in_test[j] = true;
            for b in lines[j].code.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    // An attribute gating a brace-less item (e.g. a
                    // `#[cfg(test)] use …;`) ends at the semicolon.
                    b';' if !opened && depth == 0 => bare_item = true,
                    _ => {}
                }
            }
            if (opened && depth <= 0) || bare_item {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// Is this site suppressed with `// sli-lint: allow(<rule>)` on its line
/// or the line above?
fn suppressed(lines: &[SplitLine], idx: usize, rule: Rule) -> bool {
    let needle = format!("sli-lint: allow({})", rule.name());
    lines[idx].comment.contains(&needle) || (idx > 0 && lines[idx - 1].comment.contains(&needle))
}

/// How many comment/attribute/blank lines the upward justification walk
/// may cross. Statement-continuation lines are free: a justification
/// covers the whole (possibly long) statement it precedes, but never a
/// *different* completed statement.
const JUSTIFY_WINDOW: usize = 12;

/// Walk upward from `idx` looking for any of `needles` in comment text.
/// The walk passes through comments, attributes, blank lines, and lines
/// that do not end a statement (so a comment above a multi-line call or a
/// large struct-literal statement still counts for every site inside it),
/// and stops at the first completed statement or item boundary.
fn justified_above(lines: &[SplitLine], idx: usize, needles: &[&str]) -> bool {
    let has = |i: usize| {
        let lower = lines[i].comment.to_ascii_lowercase();
        needles
            .iter()
            .any(|n| lower.contains(&n.to_ascii_lowercase()))
    };
    if has(idx) {
        return true;
    }
    let mut steps = 0;
    let mut i = idx;
    while i > 0 && steps < JUSTIFY_WINDOW {
        i -= 1;
        if has(i) {
            return true;
        }
        let code = lines[i].code.trim();
        if code.ends_with(';') || code.ends_with('}') {
            // A completed statement (or closed block) above the site: any
            // comment further up belongs to other code.
            return false;
        }
        if code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#!")
            || code.ends_with('{')
        {
            // Comments, attributes, blanks and block/statement openers
            // consume the budget; continuation lines of the site's own
            // statement do not (a justification covers the whole
            // statement, however long).
            steps += 1;
        }
    }
    false
}

/// Find `park(`/`park_timeout(` call tokens in a code line, excluding
/// `unpark…` (and any other identifier merely containing "park").
fn has_park_call(code: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("park") {
        let i = from + pos;
        from = i + 4;
        // The char before must be a separator (`.`, `:`, whitespace,
        // start, `(`), not an identifier char (which would catch
        // `unpark`, `spark_…`).
        if i > 0 {
            let prev = b[i - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let rest = &code[i + 4..];
        if rest.starts_with('(') || rest.starts_with("_timeout(") {
            return true;
        }
    }
    false
}

/// A live guard binding for the latch-across-park heuristic.
#[derive(Debug)]
struct Guard {
    name: String,
    depth: i32,
    line: usize,
}

/// Extract a guard binding from a code line: `let <name> = <expr>` where
/// the expression calls a lock/latch acquisition method. `let _ = …` is
/// skipped (the guard temporary is dropped at the end of the statement).
fn guard_binding(code: &str) -> Option<String> {
    const ACQUIRERS: [&str; 8] = [
        ".lock()",
        ".try_lock()",
        ".acquire()",
        ".try_acquire()",
        ".read()",
        ".try_read()",
        ".write()",
        ".try_write()",
    ];
    if !ACQUIRERS.iter().any(|a| code.contains(a)) {
        return None;
    }
    let let_pos = code.find("let ")?;
    let after = &code[let_pos + 4..];
    let name: String = after
        .trim_start()
        .trim_start_matches("mut ")
        .trim_start_matches("Some(") // `if let Some(g) = x.try_lock()`
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        return None;
    }
    Some(name)
}

/// Does a code line mutate storage directly (bypassing a transaction)?
/// Matches a storage receiver (`heap.`, `primary.`, `ordered.`) followed
/// immediately by a mutator method call.
fn durability_mutation(code: &str) -> bool {
    const RECEIVERS: [&str; 3] = ["heap.", "primary.", "ordered."];
    const MUTATORS: [&str; 6] = [
        "insert(",
        "update(",
        "delete(",
        "restore(",
        "remove(",
        "ensure_page(",
    ];
    for recv in RECEIVERS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(recv) {
            let i = from + pos + recv.len();
            from = i;
            if MUTATORS.iter().any(|m| code[i..].starts_with(m)) {
                return true;
            }
        }
    }
    false
}

/// Like [`justified_above`] for the durability rule, but the upward walk
/// also passes through *other mutator lines*: recovery mutations come in
/// clusters (restore + index insert + ordered insert), and one
/// `// durability:` comment above the cluster covers all of it. Any
/// unrelated completed statement still ends the walk.
fn durability_justified(lines: &[SplitLine], idx: usize) -> bool {
    let has = |i: usize| {
        lines[i]
            .comment
            .to_ascii_lowercase()
            .contains("durability:")
    };
    if has(idx) {
        return true;
    }
    let mut steps = 0;
    let mut i = idx;
    while i > 0 && steps < JUSTIFY_WINDOW {
        i -= 1;
        if has(i) {
            return true;
        }
        let code = lines[i].code.trim();
        if durability_mutation(code) || code == "}" {
            // Same mutation cluster (or the close of a conditional inside
            // it): keep walking.
            steps += 1;
            continue;
        }
        if code.ends_with(';') || code.ends_with('}') {
            return false;
        }
        if code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#!")
            || code.ends_with('{')
        {
            steps += 1;
        }
    }
    false
}

fn analyze(rel: &Path, src: &str, findings: &mut Vec<Finding>) {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let class = classify(&rel_str);
    let lines = split_lines(src);
    let in_test = test_regions(&lines);

    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;
        let trimmed = code.trim();
        let test_code = class.relaxed || in_test[idx];

        // Rule 1: unsafe needs SAFETY. Applies everywhere, tests included
        // — unsafe is unsafe no matter where it lives.
        if let Some(pos) = find_word(code, "unsafe") {
            // `unsafe trait`/`unsafe fn` declarations may carry the
            // justification as a `# Safety` doc section instead.
            let decl = code[pos..].contains("unsafe trait") || code[pos..].contains("unsafe fn");
            let needles: &[&str] = if decl {
                &["SAFETY:", "# Safety"]
            } else {
                &["SAFETY:"]
            };
            if !justified_above(&lines, idx, needles)
                && !suppressed(&lines, idx, Rule::SafetyComment)
            {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: Rule::SafetyComment,
                    message: "`unsafe` without a `// SAFETY:` justification".into(),
                });
            }
        }

        // Rule 2: non-SeqCst orderings need an `// ordering:` note.
        if !test_code {
            const WEAK: [&str; 4] = [
                "Ordering::Relaxed",
                "Ordering::Acquire",
                "Ordering::Release",
                "Ordering::AcqRel",
            ];
            if WEAK.iter().any(|w| code.contains(w))
                && !justified_above(&lines, idx, &["ordering:"])
                && !suppressed(&lines, idx, Rule::OrderingComment)
            {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: Rule::OrderingComment,
                    message: "non-SeqCst atomic ordering without an `// ordering:` justification"
                        .into(),
                });
            }
        }

        // Rule 3: no thread::sleep in library code.
        if !test_code
            && (code.contains("thread::sleep") || code.contains("sleep_ms"))
            && !suppressed(&lines, idx, Rule::Sleep)
        {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: Rule::Sleep,
                message: "thread::sleep in library code (waits must go through the parker)".into(),
            });
        }

        // Rule 5: recovery code mutating pages outside a transaction
        // must say why that is safe. Scoped to recovery source files —
        // everywhere else, storage mutation goes through a transaction
        // and the WAL, so the comment would be noise.
        if !test_code
            && rel_str.contains("recovery")
            && durability_mutation(code)
            && !durability_justified(&lines, idx)
            && !suppressed(&lines, idx, Rule::Durability)
        {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: Rule::Durability,
                message: "recovery-path storage mutation without a `// durability:` justification"
                    .into(),
            });
        }

        // Rule 4: latch held across a park call (textual heuristic, so it
        // also runs on test code — a test that parks under a latch hangs
        // the suite just as hard).
        for b in trimmed.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|g| g.depth <= depth && !code.contains(&format!("drop({})", g.name)));
        if has_park_call(code) {
            if let Some(g) = guards.first() {
                if !suppressed(&lines, idx, Rule::LatchAcrossPark) {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: Rule::LatchAcrossPark,
                        message: format!(
                            "park call while guard `{}` (bound line {}) may still be live",
                            g.name, g.line
                        ),
                    });
                }
            }
        }
        if let Some(name) = guard_binding(code) {
            guards.push(Guard {
                name,
                depth,
                line: lineno,
            });
        }
        // Function boundaries reset the guard set (a `fn` at depth ≤ 1
        // covers free functions and impl-block methods).
        if depth <= 1 && find_word(trimmed, "fn").is_some() {
            guards.clear();
        }
    }
}

/// Find `word` in `code` at an identifier boundary.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let i = from + pos;
        from = i + word.len();
        let pre_ok = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        let post = i + word.len();
        let post_ok = post >= b.len() || !(b[post].is_ascii_alphanumeric() || b[post] == b'_');
        if pre_ok && post_ok {
            return Some(i);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Directories scanned, relative to the workspace root. Third-party
/// vendored snapshots are excluded wholesale; `vendor/parking_lot` is
/// first-party (written for this tree) and is held to the same bar.
const SCAN_ROOTS: [&str; 6] = [
    "crates",
    "tools",
    "src",
    "tests",
    "examples",
    "vendor/parking_lot",
];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // Compiled location: <root>/tools/lint. A positional argument
    // overrides (useful for pointing the lint at a different checkout).
    let fallback = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or(fallback)
}

fn main() -> ExitCode {
    let root = workspace_root();
    let root = root.canonicalize().unwrap_or(root);
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs(&root.join(scan), &mut files);
    }
    if files.is_empty() {
        eprintln!("sli-lint: no Rust sources under {}", root.display());
        return ExitCode::FAILURE;
    }

    let mut findings = Vec::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path.strip_prefix(&root).unwrap_or(path);
        analyze(rel, &src, &mut findings);
    }

    if findings.is_empty() {
        println!("sli-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "sli-lint: {} finding(s) in {} files scanned",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<String> {
        let mut findings = Vec::new();
        analyze(Path::new(rel), src, &mut findings);
        findings.iter().map(|f| f.rule.name().to_string()).collect()
    }

    #[test]
    fn annotated_unsafe_passes_and_bare_unsafe_fails() {
        let good = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}
";
        assert!(run("crates/x/src/lib.rs", good).is_empty());

        // The acceptance-criteria mutation: strip the SAFETY comment and
        // the same site must fail.
        let bad = "\
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
";
        assert_eq!(run("crates/x/src/lib.rs", bad), ["safety-comment"]);
    }

    #[test]
    fn safety_comment_is_found_through_attributes_and_multiline_statements() {
        let good = "\
// SAFETY: the raw mutex serializes access.
#[allow(clippy::mut_from_ref)]
unsafe impl<T> Sync for Cell<T> {}

fn g(slot: &[u8], i: usize) {
    let v =
        // SAFETY: index checked above.
        unsafe { slot.get_unchecked(i) };
}
";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unsafe_decl_accepts_doc_safety_section() {
        let good = "\
/// Raw lock.
///
/// # Safety
///
/// Implementations must provide mutual exclusion.
pub unsafe trait RawMutex {}
";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let ok = "\
// This mentions unsafe in prose only.
fn f() {
    let s = \"unsafe { }\";
}
";
        assert!(run("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn weak_ordering_requires_justification_outside_tests() {
        let bad = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        assert_eq!(run("crates/x/src/lib.rs", bad), ["ordering-comment"]);

        let good = "// ordering: stats counter, no synchronization implied.\n\
                    fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        assert!(run("crates/x/src/lib.rs", good).is_empty());

        let trailing =
            "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) } // ordering: stats only\n";
        assert!(run("crates/x/src/lib.rs", trailing).is_empty());

        // SeqCst needs no note: it is the "I mean full order" default.
        let seqcst = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::SeqCst) }\n";
        assert!(run("crates/x/src/lib.rs", seqcst).is_empty());
    }

    #[test]
    fn ordering_rule_exempts_test_code() {
        let in_cfg_test = "\
#[cfg(test)]
mod tests {
    fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }
}
";
        assert!(run("crates/x/src/lib.rs", in_cfg_test).is_empty());
        // Integration tests and benches are exempt by path.
        let bare = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        assert!(run("crates/x/tests/stress.rs", bare).is_empty());
        assert!(run("crates/bench/benches/micro.rs", bare).is_empty());
    }

    #[test]
    fn sleep_is_banned_in_lib_code_only() {
        let bad = "fn f() { std::thread::sleep(Duration::from_millis(1)); }\n";
        assert_eq!(run("crates/x/src/lib.rs", bad), ["sleep"]);
        assert!(run("crates/harness/src/driver.rs", bad).is_empty());
        assert!(run("crates/x/tests/stress.rs", bad).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::sleep(D); }\n}\n";
        assert!(run("crates/x/src/lib.rs", in_test).is_empty());
    }

    #[test]
    fn park_under_live_guard_is_flagged() {
        let bad = "\
fn f(l: &Latch) {
    let g = l.acquire();
    shim::park();
}
";
        assert_eq!(run("crates/x/src/lib.rs", bad), ["latch-across-park"]);

        // Guard dropped by scope before the park: fine.
        let scoped = "\
fn f(l: &Latch) {
    {
        let g = l.acquire();
    }
    shim::park();
}
";
        assert!(run("crates/x/src/lib.rs", scoped).is_empty());

        // Explicit drop before the park: fine.
        let dropped = "\
fn f(l: &Latch) {
    let g = l.acquire();
    drop(g);
    shim::park();
}
";
        assert!(run("crates/x/src/lib.rs", dropped).is_empty());

        // `unpark` is not a park call.
        let unpark = "\
fn f(l: &Latch, t: &Thread) {
    let g = l.acquire();
    t.unpark();
}
";
        assert!(run("crates/x/src/lib.rs", unpark).is_empty());
    }

    #[test]
    fn recovery_mutations_need_a_durability_comment() {
        let bad = "\
fn put(t: &TableData) {
    t.heap.restore(rid, data);
}
";
        assert_eq!(run("crates/engine/src/recovery.rs", bad), ["durability"]);
        // The same code outside a recovery file is not this rule's business.
        assert!(run("crates/engine/src/session.rs", bad).is_empty());
        // Test code is exempt (integration tests drive storage directly).
        assert!(run("crates/engine/tests/recovery_proptest.rs", bad).is_empty());

        let good = "\
fn put(t: &TableData) {
    // durability: redo places the exact logged bytes back.
    t.heap.restore(rid, data);
}
";
        assert!(run("crates/engine/src/recovery.rs", good).is_empty());
    }

    #[test]
    fn one_durability_comment_covers_a_mutation_cluster() {
        let cluster = "\
fn put(t: &TableData) {
    // durability: index entries are rebuilt from the logged record.
    t.heap.ensure_page(page);
    t.heap.restore(rid, data);
    t.primary.insert(key, rid);
    if let Some(ok) = okey {
        t.ordered.insert(ok, rid);
    }
}
";
        assert!(run("crates/engine/src/recovery.rs", cluster).is_empty());

        // An unrelated statement between the comment and the mutation
        // breaks the cluster: the mutation below it is uncovered.
        let broken = "\
fn put(t: &TableData) {
    // durability: covers only the restore.
    t.heap.restore(rid, data);
    let n = counter.fetch_add(1);
    t.primary.insert(key, rid);
}
";
        assert_eq!(run("crates/engine/src/recovery.rs", broken), ["durability"]);

        // Reads are not mutations.
        let reads = "\
fn hash(t: &TableData) {
    t.heap.scan(|rid, data| acc = fnv(acc, data));
    t.primary.for_each(|k, r| acc += k);
}
";
        assert!(run("crates/engine/src/recovery.rs", reads).is_empty());
    }

    #[test]
    fn suppression_comment_silences_a_site() {
        let suppressed = "// sli-lint: allow(sleep)\n\
                          fn f() { std::thread::sleep(D); }\n";
        assert!(run("crates/x/src/lib.rs", suppressed).is_empty());
    }

    #[test]
    fn lexer_strips_nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ unsafe fn f() {}\n";
        // The unsafe survives into the code channel; the block comment
        // around it does not hide it, and it has no SAFETY text (the
        // comment channel is checked, but this one says nothing).
        assert_eq!(run("crates/x/src/lib.rs", src), ["safety-comment"]);
        let all_comment = "/* unsafe Ordering::Relaxed thread::sleep */ fn f() {}\n";
        assert!(run("crates/x/src/lib.rs", all_comment).is_empty());
    }
}
